type t = {
  strength : int;
  machines : int;
  target : float;
  width : float;
  window : (int * int) option;
}

let none =
  { strength = 0; machines = 0; target = 0.0; width = 0.1; window = None }

let enabled t = t.strength > 0 && t.machines > 0

let active t ~tick =
  enabled t
  &&
  match t.window with
  | None -> true
  | Some (start, stop) -> tick >= start && tick < stop

(* The attackers abandon the network when their window closes: the tick
   at which every still-active malicious machine crashes (an open-ended
   plan never retreats). *)
let crash_tick t =
  if not (enabled t) then None
  else match t.window with None -> None | Some (_, stop) -> Some stop

let validate t =
  if t.strength < 0 then Error "strength must be >= 0"
  else if t.machines < 0 then Error "machines must be >= 0"
  else if (t.strength > 0) <> (t.machines > 0) then
    Error "strength and machines must be enabled together"
  else if not (t.target >= 0.0 && t.target < 1.0) then
    Error "target must be in [0, 1)"
  else if not (t.width > 0.0 && t.width <= 1.0) then
    Error "width must be in (0, 1]"
  else
    match t.window with
    | None -> Ok ()
    | Some (start, stop) ->
      if start < 0 then Error "window start must be >= 0"
      else if stop <= start then Error "window must be non-empty"
      else Ok ()

(* One eclipse placement: a uniform offset within the targeted arc,
   clockwise of its start.  Exactly one [float_unit] draw — the
   attack-stream draw-order contract (docs/TESTING.md) counts on it. *)
let inject_id rng t =
  Id.add (Id.of_fraction t.target)
    (Id.of_fraction (Prng.float_unit rng *. t.width))

(* Split from the same integer seed as the main stream: a throwaway
   parent seeded identically feeds its THIRD SplitMix64-mixed child —
   the first is the fault stream ([Faults.rng]), the second the arrival
   stream ([Arrivals.rng]) — making this the fourth stream overall
   after the main one.  The child shares no state with any of them, so
   attack draws never perturb the main, fault, or arrival streams — a
   disabled plan never draws at all, and attack-off runs are
   bit-identical to the pre-attack engine. *)
let rng ~seed =
  let parent = Prng.create seed in
  let (_ : Prng.t) = Prng.split parent in
  let (_ : Prng.t) = Prng.split parent in
  Prng.split parent

(* ---- CLI spec ---------------------------------------------------- *)

let to_string t =
  if not (enabled t) then "off"
  else begin
    let buf = Buffer.create 64 in
    let add fmt =
      Printf.ksprintf
        (fun s ->
          if Buffer.length buf > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf s)
        fmt
    in
    add "strength=%d" t.strength;
    add "machines=%d" t.machines;
    if t.target <> none.target then add "target=%g" t.target;
    if t.width <> none.width then add "width=%g" t.width;
    (match t.window with
    | None -> ()
    | Some (start, stop) -> add "window=%d:%d" start stop);
    Buffer.contents buf
  end

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  let s = String.trim s in
  if s = "" || String.lowercase_ascii s = "off" then Ok none
  else begin
    let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
    let int_of name v =
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name v)
    in
    let float_of name v =
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "%s: expected a number, got %S" name v)
    in
    let valid_keys = "strength, machines, target, width, window" in
    let parse_pair acc pair =
      let* acc, seen = acc in
      match String.index_opt pair '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" pair)
      | Some i ->
        let key = String.lowercase_ascii (String.sub pair 0 i) in
        let v = String.sub pair (i + 1) (String.length pair - i - 1) in
        let* acc =
          if List.mem key seen then
            Error
              (Printf.sprintf "duplicate attack key %S (each key at most once)"
                 key)
          else Ok acc
        in
        let* acc =
          match key with
          | "strength" ->
            let* n = int_of "strength" v in
            Ok { acc with strength = n }
          | "machines" ->
            let* n = int_of "machines" v in
            Ok { acc with machines = n }
          | "target" ->
            let* f = float_of "target" v in
            Ok { acc with target = f }
          | "width" ->
            let* f = float_of "width" v in
            Ok { acc with width = f }
          | "window" -> (
            match String.index_opt v ':' with
            | None ->
              Error (Printf.sprintf "window: expected START:STOP, got %S" v)
            | Some i ->
              let* start = int_of "window start" (String.sub v 0 i) in
              let* stop =
                int_of "window stop"
                  (String.sub v (i + 1) (String.length v - i - 1))
              in
              Ok { acc with window = Some (start, stop) })
          | _ ->
            Error
              (Printf.sprintf "unknown attack key %S (valid keys: %s)" key
                 valid_keys)
        in
        Ok (acc, key :: seen)
    in
    let* plan, _ =
      List.fold_left parse_pair (Ok (none, [])) (String.split_on_char ',' s)
    in
    let* () = validate plan in
    Ok plan
  end
