(** Open-system arrival plans for the simulation engine.

    The paper's experiments drain a fixed task pool to zero — a batch,
    judged by makespan.  An arrival plan turns the engine into an
    {e open system}: new tasks are injected into the live ring at the
    start of every tick, the run lasts exactly {!field-horizon} ticks,
    and the interesting measurement is steady-state queueing behaviour
    (windowed queue-length and sojourn percentiles) rather than time to
    drain.

    Like a fault plan, an arrival plan is a {e pure description}; all
    arrival randomness — the per-tick Poisson counts and the injected
    task keys — is drawn from a {e dedicated PRNG stream} ({!rng})
    split from the simulation seed, never from the main simulation
    stream.  Consequence (enforced by the differential oracle and
    pinned by [test/test_arrivals.ml]): a run with {!none} is
    bit-for-bit identical to a run of the engine before arrivals
    existed. *)

type profile =
  | Poisson of { rate : float }
      (** homogeneous Poisson process: [rate] expected arrivals/tick *)
  | Bursty of { rate : float; burst_rate : float; on : int; off : int }
      (** on/off (interrupted Poisson) process: [burst_rate] for [on]
          ticks, then [rate] for [off] ticks, repeating from tick 0 *)
  | Diurnal of { rate : float; amplitude : float; period : int }
      (** sinusoidal rate [rate + amplitude * sin (2π tick / period)] —
          a day/night load curve *)

type keys =
  | Uniform  (** fresh SHA-1 ids, uniform on the ring ([Keygen.fresh]) *)
  | Hot of { hotspots : int; spread : float; zipf_s : float }
      (** Zipf-skewed hot keys: [hotspots] centers are drawn from the
          arrival stream at setup; each arriving task picks a center
          with Zipf([zipf_s]) frequency ([Keygen.zipf]) and lands a
          uniform offset in [[0, spread)) clockwise of it — the same
          construction as [Params.Clustered] batch keys *)

type t = {
  profile : profile option;  (** [None] = batch engine, bit-for-bit *)
  keys : keys;
  horizon : int;
      (** exact run length in ticks; an open-system run never terminates
          by draining (arrivals keep coming) and ignores [max_ticks] *)
  window : int;  (** steady-state measurement window length, in ticks *)
}

val none : t
(** The empty plan: no arrivals, batch semantics.  [horizon = 200],
    [window = 25], [keys = Uniform] are the defaults used when a plan
    enables a profile without spelling them. *)

val enabled : t -> bool
(** [true] iff the plan injects arrivals (a profile is set). *)

val validate : t -> (unit, string) result

val rate_at : t -> tick:int -> float
(** Expected arrivals at [tick] under the plan's profile; [0] when
    disabled.  Pure — both the engine and the oracle price every tick
    through this one function.  Never negative (validation bounds
    diurnal amplitude by the mean rate). *)

val poisson_count : Prng.t -> float -> int
(** [poisson_count rng lambda] draws one Poisson(lambda) variate by
    Knuth's product-of-uniforms inversion: multiply [Prng.float_unit]
    draws until the product falls to [exp (-. lambda)].  Draw-order
    contract: exactly [k + 1] draws for a count of [k], and [lambda <=
    0] returns [0] {e without drawing} (like [Prng.bernoulli] at p = 0).
    The differential oracle re-implements this loop naively;
    [test/test_arrivals.ml] pins the equivalence on a shared stream. *)

val rng : seed:int -> Prng.t
(** The dedicated arrival stream for a simulation seed: the {e second}
    split off a throwaway parent seeded identically (the first split is
    the fault stream, [Faults.rng]).  Shares no state with either, so a
    disabled plan leaves both other streams untouched. *)

val of_string : string -> (t, string) result
(** Parse a CLI arrival spec: comma-separated [key=value] pairs with
    exactly one rate profile among [poisson=8.5],
    [burst=2:40:10:50] (LO:HI:ON:OFF), [diurnal=10:6:100]
    (MEAN:AMP:PERIOD); plus optional [hot=16:0.05:1.1]
    (HOTSPOTS:SPREAD:ZIPF_S), [horizon=500], [window=50].
    [""] and ["off"] parse to {!none}.  Each key may appear at most
    once; a duplicate or unknown key is an [Error] naming the valid
    keys. *)

val to_string : t -> string
(** Canonical spec string ({!of_string} round-trips); ["off"] for
    {!none}. *)

val pp : Format.formatter -> t -> unit
