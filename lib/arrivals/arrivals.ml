type profile =
  | Poisson of { rate : float }
  | Bursty of { rate : float; burst_rate : float; on : int; off : int }
  | Diurnal of { rate : float; amplitude : float; period : int }

type keys =
  | Uniform
  | Hot of { hotspots : int; spread : float; zipf_s : float }

type t = {
  profile : profile option;
  keys : keys;
  horizon : int;
  window : int;
}

let none = { profile = None; keys = Uniform; horizon = 200; window = 25 }
let enabled t = t.profile <> None

(* A mean of 10k arrivals in one tick is already far past anything the
   consume side can drain; beyond it Knuth's inversion loop (one draw
   per arrival) stops being a sane way to sample. *)
let max_rate = 10_000.0

let valid_rate r = Float.is_finite r && r >= 0.0 && r <= max_rate

let validate t =
  let profile_ok =
    match t.profile with
    | None -> Ok ()
    | Some (Poisson { rate }) ->
      if not (valid_rate rate) then
        Error (Printf.sprintf "poisson rate must be in [0, %g]" max_rate)
      else Ok ()
    | Some (Bursty { rate; burst_rate; on; off }) ->
      if not (valid_rate rate) then
        Error (Printf.sprintf "burst base rate must be in [0, %g]" max_rate)
      else if not (valid_rate burst_rate) then
        Error (Printf.sprintf "burst high rate must be in [0, %g]" max_rate)
      else if on < 1 then Error "burst on-phase must be >= 1 tick"
      else if off < 1 then Error "burst off-phase must be >= 1 tick"
      else Ok ()
    | Some (Diurnal { rate; amplitude; period }) ->
      if not (valid_rate rate) then
        Error (Printf.sprintf "diurnal mean rate must be in [0, %g]" max_rate)
      else if not (Float.is_finite amplitude) || amplitude < 0.0 then
        Error "diurnal amplitude must be >= 0"
      else if amplitude > rate then
        Error "diurnal amplitude must not exceed the mean rate"
      else if period < 1 then Error "diurnal period must be >= 1 tick"
      else Ok ()
  in
  match profile_ok with
  | Error _ as e -> e
  | Ok () -> (
    let keys_ok =
      match t.keys with
      | Uniform -> Ok ()
      | Hot { hotspots; spread; zipf_s } ->
        if hotspots < 1 then Error "hot spots must be >= 1"
        else if not (Float.is_finite spread) || spread < 0.0 || spread > 1.0
        then Error "hot spread must be in [0, 1]"
        else if not (Float.is_finite zipf_s) || zipf_s < 0.0 then
          Error "hot zipf exponent must be >= 0"
        else Ok ()
    in
    match keys_ok with
    | Error _ as e -> e
    | Ok () ->
      if t.horizon < 1 then Error "horizon must be >= 1 tick"
      else if t.window < 1 then Error "window must be >= 1 tick"
      else Ok ())

let two_pi = 8.0 *. atan 1.0

let rate_at t ~tick =
  match t.profile with
  | None -> 0.0
  | Some (Poisson { rate }) -> rate
  | Some (Bursty { rate; burst_rate; on; off }) ->
    if tick mod (on + off) < on then burst_rate else rate
  | Some (Diurnal { rate; amplitude; period }) ->
    rate
    +. amplitude *. sin (two_pi *. float_of_int tick /. float_of_int period)

(* Knuth's inversion by product of uniforms: k+1 [float_unit] draws for
   a count of k.  The zero-rate guard draws nothing, mirroring
   [Prng.bernoulli]'s p = 0 short-circuit — a profile that is quiet this
   tick must leave the arrival stream untouched.  The differential
   oracle duplicates this loop naively; keep them in lockstep. *)
let poisson_count rng lambda =
  if lambda <= 0.0 then 0
  else begin
    let l = exp (-.lambda) in
    let rec go k p =
      let p = p *. Prng.float_unit rng in
      if p <= l then k else go (k + 1) p
    in
    go 0 1.0
  end

(* The SECOND split off a throwaway parent seeded identically: the
   first split is the fault stream ([Faults.rng]), and the main stream
   is [Prng.create seed] itself.  The three streams share no state, so
   a disabled plan never consumes a draw and leaves the run
   bit-identical to an engine without [lib/arrivals] at all. *)
let rng ~seed =
  let parent = Prng.create seed in
  let (_ : Prng.t) = Prng.split parent in
  Prng.split parent

(* ---- CLI spec ---------------------------------------------------- *)

let to_string t =
  if not (enabled t) then "off"
  else begin
    let buf = Buffer.create 64 in
    let add fmt =
      Printf.ksprintf
        (fun s ->
          if Buffer.length buf > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf s)
        fmt
    in
    (match t.profile with
    | None -> ()
    | Some (Poisson { rate }) -> add "poisson=%g" rate
    | Some (Bursty { rate; burst_rate; on; off }) ->
      add "burst=%g:%g:%d:%d" rate burst_rate on off
    | Some (Diurnal { rate; amplitude; period }) ->
      add "diurnal=%g:%g:%d" rate amplitude period);
    (match t.keys with
    | Uniform -> ()
    | Hot { hotspots; spread; zipf_s } ->
      add "hot=%d:%g:%g" hotspots spread zipf_s);
    if t.horizon <> none.horizon then add "horizon=%d" t.horizon;
    if t.window <> none.window then add "window=%d" t.window;
    Buffer.contents buf
  end

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  let s = String.trim s in
  if s = "" || String.lowercase_ascii s = "off" then Ok none
  else begin
    let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
    let int_of name v =
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name v)
    in
    let float_of name v =
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "%s: expected a number, got %S" name v)
    in
    let fields name expect v =
      let parts = String.split_on_char ':' v in
      if List.length parts <> List.length expect then
        Error
          (Printf.sprintf "%s: expected %s, got %S" name
             (String.concat ":" expect) v)
      else Ok parts
    in
    let valid_keys = "poisson, burst, diurnal, hot, horizon, window" in
    (* One clause per key, like fault specs: duplicates are almost
       always a typo'd plan, so reject them. *)
    let parse_pair acc pair =
      let* acc, seen = acc in
      match String.index_opt pair '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" pair)
      | Some i ->
        let key = String.lowercase_ascii (String.sub pair 0 i) in
        let v = String.sub pair (i + 1) (String.length pair - i - 1) in
        let* acc =
          if List.mem key seen then
            Error
              (Printf.sprintf
                 "duplicate arrival key %S (each key at most once)" key)
          else Ok acc
        in
        let* acc =
          let set_profile p =
            match acc.profile with
            | Some _ ->
              Error
                "at most one rate profile (poisson, burst or diurnal) per \
                 plan"
            | None -> Ok { acc with profile = Some p }
          in
          match key with
          | "poisson" ->
            let* rate = float_of "poisson" v in
            set_profile (Poisson { rate })
          | "burst" ->
            let* parts = fields "burst" [ "LO"; "HI"; "ON"; "OFF" ] v in
            (match parts with
            | [ lo; hi; on; off ] ->
              let* rate = float_of "burst base rate" lo in
              let* burst_rate = float_of "burst high rate" hi in
              let* on = int_of "burst on-phase" on in
              let* off = int_of "burst off-phase" off in
              set_profile (Bursty { rate; burst_rate; on; off })
            | _ -> assert false)
          | "diurnal" ->
            let* parts = fields "diurnal" [ "MEAN"; "AMP"; "PERIOD" ] v in
            (match parts with
            | [ mean; amp; period ] ->
              let* rate = float_of "diurnal mean rate" mean in
              let* amplitude = float_of "diurnal amplitude" amp in
              let* period = int_of "diurnal period" period in
              set_profile (Diurnal { rate; amplitude; period })
            | _ -> assert false)
          | "hot" ->
            let* parts = fields "hot" [ "HOTSPOTS"; "SPREAD"; "ZIPF_S" ] v in
            (match parts with
            | [ h; sp; z ] ->
              let* hotspots = int_of "hot spots" h in
              let* spread = float_of "hot spread" sp in
              let* zipf_s = float_of "hot zipf exponent" z in
              Ok { acc with keys = Hot { hotspots; spread; zipf_s } }
            | _ -> assert false)
          | "horizon" ->
            let* n = int_of "horizon" v in
            Ok { acc with horizon = n }
          | "window" ->
            let* n = int_of "window" v in
            Ok { acc with window = n }
          | _ ->
            Error
              (Printf.sprintf "unknown arrival key %S (valid keys: %s)" key
                 valid_keys)
        in
        Ok (acc, key :: seen)
    in
    let* plan, _ =
      List.fold_left parse_pair (Ok (none, [])) (String.split_on_char ',' s)
    in
    let* () =
      if plan.profile = None then
        Error "arrival plan needs a rate profile (poisson, burst or diurnal)"
      else Ok ()
    in
    let* () = validate plan in
    Ok plan
  end
