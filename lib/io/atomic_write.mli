(** Crash-safe file writes: write to a temp file in the target's
    directory, flush (optionally fsync), then [rename] over the target.

    A process killed at any instant leaves either the previous file or
    the complete new one — never a truncated half-write.  Every result
    file a gate or a resume path later reads back (bench baselines,
    exported CSVs, sweep journals, checkpoints) must land through this
    module. *)

val write : ?fsync:bool -> string -> string -> unit
(** [write path contents] atomically replaces [path] with [contents].
    [fsync] (default [false]) additionally forces the data to stable
    storage before the rename — use it when the file must survive a
    machine crash, not just a process kill.  On failure the temp file is
    removed and the original [path] is untouched. *)

val with_channel : ?fsync:bool -> string -> (out_channel -> 'a) -> 'a
(** [with_channel path f] runs [f] on a channel to the temp file and
    renames over [path] only if [f] returns normally; if [f] raises, the
    temp file is removed, [path] is untouched, and the exception
    propagates. *)
