(** Minimal JSON reader, the inverse of {!Json_out}.

    Built for the files this repository writes itself — sweep journal
    lines and exported results — though it accepts any standard JSON
    document.  Round-trip conventions: numbers without a fractional or
    exponent part parse as [Int], others as [Float] (inverting
    Json_out's [%.17g] rendering exactly); [null] parses as [Null], and
    {!to_float} maps [Null] back to NaN, inverting Json_out's
    NaN-to-null rendering. *)

type error = { pos : int; msg : string }

val error_to_string : error -> string

val parse : string -> (Json_out.t, error) result
(** Parse one complete JSON value; trailing non-whitespace is an
    error. *)

(** {1 Accessors}

    Total lookups for decoders that must treat a malformed line as
    "absent", never crash on it. *)

val member : string -> Json_out.t -> Json_out.t option
(** Field of an object; [None] on missing field or non-object. *)

val to_int : Json_out.t -> int option

val to_float : Json_out.t -> float option
(** Accepts [Float], [Int] (widened) and [Null] (NaN). *)

val to_bool : Json_out.t -> bool option
val to_string : Json_out.t -> string option
val to_list : Json_out.t -> Json_out.t list option
