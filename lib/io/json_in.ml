(* A minimal JSON reader for the files this repository writes itself —
   sweep journals and exported results, all produced by Json_out.  It
   parses full JSON (the journal must survive hand-truncation and
   foreign editors), but its design center is round-tripping Json_out:
   numbers without '.', 'e' or 'E' come back as [Int], everything else
   as [Float] via [float_of_string] (which inverts Json_out's %.17g
   exactly), and [null] maps to [Null] — readers expecting a float
   treat it as NaN, inverting Json_out's NaN-to-null rendering. *)

type error = { pos : int; msg : string }

let error_to_string e = Printf.sprintf "at offset %d: %s" e.pos e.msg

exception Fail of error

let fail pos msg = raise (Fail { pos; msg })

let parse (s : string) : (Json_out.t, error) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail !pos (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail !pos (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail !pos "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail !pos "truncated \\u escape";
               let code =
                 try int_of_string ("0x" ^ String.sub s !pos 4)
                 with Failure _ -> fail !pos "bad \\u escape"
               in
               pos := !pos + 4;
               (* UTF-8-encode the code point; Json_out only emits
                  \u00XX control escapes, but accept the full BMP. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail !pos (Printf.sprintf "bad escape \\%C" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Json_out.Float f
      | None -> fail start (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Json_out.Int i
      | None -> (
        (* An integer literal too large for OCaml's int still parses as
           a float rather than failing the whole document. *)
        match float_of_string_opt tok with
        | Some f -> Json_out.Float f
        | None -> fail start (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some 'n' -> literal "null" Json_out.Null
    | Some 't' -> literal "true" (Json_out.Bool true)
    | Some 'f' -> literal "false" (Json_out.Bool false)
    | Some '"' -> Json_out.String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Json_out.List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Json_out.List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Json_out.Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Json_out.Obj (List.rev !fields)
      end
    | Some c -> fail !pos (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail !pos "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail e -> Error e

(* ---------------------------------------------------------------- *)
(* Accessors: total functions returning options, for decoders that    *)
(* must reject malformed journal lines rather than crash on them.     *)

let member key = function
  | Json_out.Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Json_out.Int i -> Some i | _ -> None

(* Json_out renders NaN/inf as null; invert that here so float fields
   round-trip through a journal line. *)
let to_float = function
  | Json_out.Float f -> Some f
  | Json_out.Int i -> Some (float_of_int i)
  | Json_out.Null -> Some Float.nan
  | _ -> None

let to_bool = function Json_out.Bool b -> Some b | _ -> None
let to_string = function Json_out.String s -> Some s | _ -> None
let to_list = function Json_out.List l -> Some l | _ -> None
