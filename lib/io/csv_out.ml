let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row fields = String.concat "," (List.map escape_field fields)

let table ~header rows =
  let width = List.length header in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (row header);
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      if List.length r <> width then
        invalid_arg "Csv_out.table: ragged row";
      Buffer.add_string buf (row r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* Atomic so a kill mid-export can never leave a truncated CSV for a
   downstream consumer (plots, the ci.sh gates) to misread. *)
let write_file path contents = Atomic_write.write path contents
