(* Write-temp-then-rename: the canonical crash-safe file write.  The
   temp file lives in the target's directory so the final rename stays
   within one filesystem (rename(2) is only atomic there); a unique
   suffix keeps concurrent writers of different targets apart.  A kill
   at any point leaves either the old file or the new one — never a
   truncated hybrid for a downstream gate (ci.sh's bench baselines, the
   sweep journals) to trip over. *)

let counter = ref 0

let temp_path path =
  incr counter;
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) !counter

let write ?(fsync = false) path contents =
  let tmp = temp_path path in
  let oc = open_out_bin tmp in
  (match
     output_string oc contents;
     flush oc;
     if fsync then Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  match Sys.rename tmp path with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let with_channel ?(fsync = false) path f =
  let tmp = temp_path path in
  let oc = open_out_bin tmp in
  let v =
    match f oc with
    | v ->
      flush oc;
      if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
      close_out oc;
      v
    | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
  in
  match Sys.rename tmp path with
  | () -> v
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
