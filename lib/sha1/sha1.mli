(** SHA-1 (RFC 3174 / FIPS 180-1), pure OCaml.

    The paper derives every node id and task key from SHA-1, so the hash
    is a first-class substrate here.  This implementation processes
    64-byte blocks with untagged [int] arithmetic masked to 32 bits and
    supports incremental hashing.

    SHA-1 is of course cryptographically broken for collision resistance;
    it is used here, as in the paper and in Chord/BitTorrent, purely as a
    fixed 160-bit mixing function. *)

type ctx
(** Mutable hashing state. *)

val init : unit -> ctx

val feed_string : ctx -> ?off:int -> ?len:int -> string -> unit
(** Absorb a substring.  @raise Invalid_argument on bad bounds. *)

val feed_bytes : ctx -> ?off:int -> ?len:int -> bytes -> unit

val get : ctx -> string
(** Finalize and return the 20-byte big-endian digest.  The context may
    keep being fed afterwards ([get] works on a copy of the state). *)

val digest_string : string -> string
(** One-shot convenience: [digest_string s] is the 20-byte digest. *)

val digest_bytes : ?off:int -> ?len:int -> bytes -> string
(** One-shot digest of a byte range, identical to init/feed/get.  Inputs
    of at most 55 bytes (one padded block) take a low-allocation fast
    path — keygen digests millions of 16-byte seeds during setup, where
    the incremental context's per-digest allocations dominated.
    @raise Invalid_argument on bad bounds. *)

val hex_of_digest : string -> string
(** Render a 20-byte digest as 40 lowercase hex characters. *)

val digest_hex : string -> string
(** [digest_hex s = hex_of_digest (digest_string s)]. *)
