(* SHA-1 over untagged OCaml ints masked to 32 bits: on a 64-bit system
   this avoids Int32 boxing in the hot compression loop. *)

let mask32 = 0xffffffff

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  block : bytes; (* 64-byte staging buffer *)
  mutable fill : int; (* bytes currently staged *)
  mutable total : int; (* total bytes absorbed *)
  w : int array; (* 80-entry message schedule, reused *)
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xefcdab89;
    h2 = 0x98badcfe;
    h3 = 0x10325476;
    h4 = 0xc3d2e1f0;
    block = Bytes.create 64;
    fill = 0;
    total = 0;
    w = Array.make 80 0;
  }

let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let j = off + (i * 4) in
    w.(i) <-
      (Char.code (Bytes.unsafe_get block j) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (j + 3))
  done;
  for i = 16 to 79 do
    w.(i) <- rotl32 (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
  done;
  let a = ref ctx.h0
  and b = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4 in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then (((!b land !c) lor (lnot !b land !d)) land mask32, 0x5a827999)
      else if i < 40 then (!b lxor !c lxor !d, 0x6ed9eba1)
      else if i < 60 then
        ((!b land !c) lor (!b land !d) lor (!c land !d), 0x8f1bbcdc)
      else (!b lxor !c lxor !d, 0xca62c1d6)
    in
    let temp = (rotl32 !a 5 + (f land mask32) + !e + k + w.(i)) land mask32 in
    e := !d;
    d := !c;
    c := rotl32 !b 30;
    b := !a;
    a := temp
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask32;
  ctx.h1 <- (ctx.h1 + !b) land mask32;
  ctx.h2 <- (ctx.h2 + !c) land mask32;
  ctx.h3 <- (ctx.h3 + !d) land mask32;
  ctx.h4 <- (ctx.h4 + !e) land mask32

let feed_bytes ctx ?(off = 0) ?len src =
  let len = match len with Some l -> l | None -> Bytes.length src - off in
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Sha1.feed_bytes: bad bounds";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled staging block first. *)
  if ctx.fill > 0 then begin
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit src !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      compress ctx ctx.block 0;
      ctx.fill <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx src !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos ctx.block ctx.fill !remaining;
    ctx.fill <- ctx.fill + !remaining
  end

let feed_string ctx ?(off = 0) ?len src =
  let len = match len with Some l -> l | None -> String.length src - off in
  if off < 0 || len < 0 || off + len > String.length src then
    invalid_arg "Sha1.feed_string: bad bounds";
  feed_bytes ctx ~off ~len (Bytes.unsafe_of_string src)

let get ctx =
  let clone =
    {
      ctx with
      block = Bytes.copy ctx.block;
      w = Array.make 80 0;
    }
  in
  let bitlen = clone.total * 8 in
  let pad_len =
    let r = (clone.total + 1) mod 64 in
    if r <= 56 then 56 - r else 120 - r
  in
  let tail = Bytes.make (1 + pad_len + 8) '\x00' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail
      (1 + pad_len + i)
      (Char.chr ((bitlen lsr (8 * (7 - i))) land 0xff))
  done;
  feed_bytes clone tail;
  assert (clone.fill = 0);
  let out = Bytes.create 20 in
  let put i v =
    Bytes.set out i (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out (i + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (i + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (i + 3) (Char.chr (v land 0xff))
  in
  put 0 clone.h0;
  put 4 clone.h1;
  put 8 clone.h2;
  put 12 clone.h3;
  put 16 clone.h4;
  Bytes.unsafe_to_string out

let digest_string s =
  let ctx = init () in
  feed_string ctx s;
  get ctx

(* One-shot digest of a short input — at most 55 bytes, so message,
   0x80 terminator and the 8-byte length all fit a single padded block.
   Produces exactly the init/feed/get digest while allocating only the
   staging block, a 16-word circular schedule and the output: keygen
   hashes millions of 16-byte seeds during setup, and the ctx path's
   per-digest ctx + 80-word schedule + clone dominated minor-heap
   traffic there. *)
(* The four round groups as mutually tail-recursive functions: the five
   chaining words travel as arguments — registers, not ref cells — and
   each group has its fixed f/k instead of a per-round comparison chain.
   Round i passes (temp, a, rotl30 b, c, d) along.  The circular
   schedule update (w[i-16] lives at w[i land 15]) is spelled out in
   each body: without flambda a shared helper would be a real call, 64
   of them per digest. *)
let rec rounds1 w i a b c d e =
  if i = 20 then rounds2 w 20 a b c d e
  else
    let wi =
      if i < 16 then Array.unsafe_get w i
      else begin
        let v =
          rotl32
            (Array.unsafe_get w ((i - 3) land 15)
            lxor Array.unsafe_get w ((i - 8) land 15)
            lxor Array.unsafe_get w ((i - 14) land 15)
            lxor Array.unsafe_get w (i land 15))
            1
        in
        Array.unsafe_set w (i land 15) v;
        v
      end
    in
    rounds1 w (i + 1)
      ((rotl32 a 5
       + (((b land c) lor (lnot b land d)) land mask32)
       + e + 0x5a827999 + wi)
      land mask32)
      a (rotl32 b 30) c d

and rounds2 w i a b c d e =
  if i = 40 then rounds3 w 40 a b c d e
  else begin
    let wi =
      rotl32
        (Array.unsafe_get w ((i - 3) land 15)
        lxor Array.unsafe_get w ((i - 8) land 15)
        lxor Array.unsafe_get w ((i - 14) land 15)
        lxor Array.unsafe_get w (i land 15))
        1
    in
    Array.unsafe_set w (i land 15) wi;
    rounds2 w (i + 1)
      ((rotl32 a 5 + (b lxor c lxor d) + e + 0x6ed9eba1 + wi) land mask32)
      a (rotl32 b 30) c d
  end

and rounds3 w i a b c d e =
  if i = 60 then rounds4 w 60 a b c d e
  else begin
    let wi =
      rotl32
        (Array.unsafe_get w ((i - 3) land 15)
        lxor Array.unsafe_get w ((i - 8) land 15)
        lxor Array.unsafe_get w ((i - 14) land 15)
        lxor Array.unsafe_get w (i land 15))
        1
    in
    Array.unsafe_set w (i land 15) wi;
    rounds3 w (i + 1)
      ((rotl32 a 5
       + ((b land c) lor (b land d) lor (c land d))
       + e + 0x8f1bbcdc + wi)
      land mask32)
      a (rotl32 b 30) c d
  end

and rounds4 w i a b c d e =
  if i = 80 then (a, b, c, d, e)
  else begin
    let wi =
      rotl32
        (Array.unsafe_get w ((i - 3) land 15)
        lxor Array.unsafe_get w ((i - 8) land 15)
        lxor Array.unsafe_get w ((i - 14) land 15)
        lxor Array.unsafe_get w (i land 15))
        1
    in
    Array.unsafe_set w (i land 15) wi;
    rounds4 w (i + 1)
      ((rotl32 a 5 + (b lxor c lxor d) + e + 0xca62c1d6 + wi) land mask32)
      a (rotl32 b 30) c d
  end

let digest_short b off len =
  (* Build the padded schedule directly from the input — message bytes
     big-endian, the 0x80 terminator, zeros, then the bit length — with
     no 64-byte staging block: [len <= 55] guarantees the terminator
     falls before word 14 and the length fits word 15. *)
  let w = Array.make 16 0 in
  let full = len lsr 2 in
  for i = 0 to full - 1 do
    let j = off + (i * 4) in
    w.(i) <-
      (Char.code (Bytes.unsafe_get b j) lsl 24)
      lor (Char.code (Bytes.unsafe_get b (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get b (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get b (j + 3))
  done;
  (* Boundary word: the 0-3 trailing message bytes followed by the 0x80
     terminator, left-aligned; remaining words stay zero. *)
  let r = len land 3 in
  let bw = ref 0 in
  for j = 0 to r - 1 do
    bw := (!bw lsl 8) lor Char.code (Bytes.unsafe_get b (off + (full * 4) + j))
  done;
  bw := ((!bw lsl 8) lor 0x80) lsl (8 * (3 - r));
  w.(full) <- !bw;
  w.(15) <- len * 8;
  let a, b', c, d, e =
    rounds1 w 0 0x67452301 0xefcdab89 0x98badcfe 0x10325476 0xc3d2e1f0
  in
  let out = Bytes.create 20 in
  let put i v =
    Bytes.set out i (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out (i + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (i + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (i + 3) (Char.chr (v land 0xff))
  in
  put 0 ((0x67452301 + a) land mask32);
  put 4 ((0xefcdab89 + b') land mask32);
  put 8 ((0x98badcfe + c) land mask32);
  put 12 ((0x10325476 + d) land mask32);
  put 16 ((0xc3d2e1f0 + e) land mask32);
  Bytes.unsafe_to_string out

let digest_bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha1.digest_bytes: bad bounds";
  if len <= 55 then digest_short b off len
  else begin
    let ctx = init () in
    feed_bytes ctx ~off ~len b;
    get ctx
  end

let hex_of_digest d =
  let b = Buffer.create 40 in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents b

let digest_hex s = hex_of_digest (digest_string s)
