(* A checkpoint file is a short self-describing text header followed by
   a Marshal body.  The header lets [load] refuse a mismatched file —
   wrong format, wrong version, different parameters — with a clear
   message *before* it hands untrusted bytes to [Marshal.from_channel],
   which would otherwise fail with an unhelpful [Failure "input_value:
   ..."] (or worse, succeed and resume a subtly different run).

   Layout (all header lines LF-terminated, body starts right after):

     DHTLB-CKPT v1
     git_rev <rev>
     params_digest <40-hex sha1>
     tick <n>
     <Marshal.to_channel of Engine.progress>

   The body is marshaled with default flags: [Engine.progress] is plain
   data (no closures anywhere — the strategy is re-supplied at resume),
   and default marshaling preserves the intra-value sharing the state
   relies on (one vnode record reachable from the ring, the hash index
   and its machine's vnode list must stay one block, which
   [State.check_invariants] tests by physical equality). *)

let magic = "DHTLB-CKPT"
let format_version = 1

let current_git_rev () =
  match Sys.getenv_opt "DHTLB_GIT_REV" with
  | Some r when r <> "" -> r
  | Some _ | None -> "unknown"

(* The digest covers the whole parameter record, byte for byte, via its
   marshaled form — [Params.pp] elides fields, so pretty-printing is not
   a faithful identity.  Two Params.t values digest equal iff a resumed
   run and a fresh run would be configured identically. *)
let digest_of_params (params : Params.t) =
  Sha1.digest_hex (Marshal.to_string params [])

type header = {
  version : int;
  git_rev : string;
  params_digest : string;
  tick : int;
}

let save ~path (params : Params.t) (p : Engine.progress) =
  Atomic_write.with_channel ~fsync:true path (fun oc ->
      Printf.fprintf oc "%s v%d\n" magic format_version;
      Printf.fprintf oc "git_rev %s\n" (current_git_rev ());
      Printf.fprintf oc "params_digest %s\n" (digest_of_params params);
      Printf.fprintf oc "tick %d\n" p.Engine.p_state.State.tick;
      Marshal.to_channel oc p [])

(* Header parsing: each line is "<name> <value>".  Errors name the file
   and the offending line so a refusal is actionable. *)
let field ic ~path ~name =
  match input_line ic with
  | exception End_of_file ->
    Error (Printf.sprintf "%s: truncated checkpoint header (missing %s)" path name)
  | line -> (
    let prefix = name ^ " " in
    let pl = String.length prefix in
    if String.length line > pl && String.equal (String.sub line 0 pl) prefix
    then Ok (String.sub line pl (String.length line - pl))
    else
      Error
        (Printf.sprintf "%s: malformed checkpoint header: expected \"%s ...\", got %S"
           path name line))

let load ~path (params : Params.t) =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let ( let* ) = Result.bind in
        let* first =
          match input_line ic with
          | exception End_of_file ->
            Error (Printf.sprintf "%s: empty file is not a checkpoint" path)
          | l -> Ok l
        in
        let* () =
          if String.equal first (Printf.sprintf "%s v%d" magic format_version)
          then Ok ()
          else if
            String.length first >= String.length magic
            && String.equal (String.sub first 0 (String.length magic)) magic
          then
            Error
              (Printf.sprintf
                 "%s: unsupported checkpoint version %S (this build reads \"%s v%d\")"
                 path first magic format_version)
          else
            Error
              (Printf.sprintf "%s: not a %s checkpoint (first line %S)" path magic
                 first)
        in
        let* git_rev = field ic ~path ~name:"git_rev" in
        let* params_digest = field ic ~path ~name:"params_digest" in
        let* tick_s = field ic ~path ~name:"tick" in
        let* tick =
          match int_of_string_opt tick_s with
          | Some t when t >= 0 -> Ok t
          | Some _ | None ->
            Error (Printf.sprintf "%s: malformed checkpoint tick %S" path tick_s)
        in
        let current = digest_of_params params in
        let* () =
          if String.equal params_digest current then Ok ()
          else
            Error
              (Printf.sprintf
                 "%s: parameter mismatch: checkpoint was taken under different \
                  parameters (file digest %s, current %s) — resume with the \
                  original configuration, or start a fresh run"
                 path params_digest current)
        in
        let* (p : Engine.progress) =
          match Marshal.from_channel ic with
          | p -> Ok p
          | exception (Failure _ | End_of_file) ->
            Error (Printf.sprintf "%s: corrupt checkpoint body" path)
        in
        (* Belt and braces: the header tick is advisory (it lets tools
           inspect a checkpoint without unmarshaling), but it must agree
           with the state it fronts. *)
        let* () =
          if p.Engine.p_state.State.tick = tick then Ok ()
          else
            Error
              (Printf.sprintf
                 "%s: checkpoint header tick %d disagrees with state tick %d"
                 path tick p.Engine.p_state.State.tick)
        in
        Ok (p, { version = format_version; git_rev; params_digest; tick }))
