(** Versioned, crash-safe serialization of a complete simulation.

    A checkpoint captures {e everything} a run needs to continue
    bit-for-bit — the full {!State.t} (ring, machines, tasks, fault and
    arrival plans, attack state, and all four PRNG streams), the trace's
    checkpointable view and the steady-state collector — as an
    {!Engine.progress}, written through {!Atomic_write} (a kill at any
    instant leaves the previous checkpoint or the complete new one,
    never a torn file).

    The file is self-describing: a text header

    {v
DHTLB-CKPT v1
git_rev <rev>
params_digest <40-hex sha1>
tick <n>
    v}

    precedes the marshaled body.  {!load} refuses — with a clear error,
    before unmarshaling anything — files with the wrong magic, an
    unsupported format version, or a parameter digest that does not
    match the parameters the caller is about to resume under.  A
    [git_rev] mismatch is {e reported but not refused} (the header is
    returned; callers compare against {!current_git_rev} and warn):
    marshaled state is only portable across builds whose type layout
    agrees, which a rev string can neither prove nor disprove. *)

type header = {
  version : int;  (** the file's format version (currently 1) *)
  git_rev : string;  (** revision recorded at save time *)
  params_digest : string;  (** SHA-1 over the marshaled {!Params.t} *)
  tick : int;  (** tick the checkpoint was taken at *)
}

val current_git_rev : unit -> string
(** The revision recorded into headers: [DHTLB_GIT_REV] when set and
    non-empty, else ["unknown"].  An environment variable rather than a
    compiled-in constant so release scripts can stamp builds without a
    generated source file. *)

val digest_of_params : Params.t -> string
(** SHA-1 hex digest over the marshaled parameter record.  Equal
    digests iff a fresh run and a resume would be configured
    identically ([Params.pp] elides fields, so pretty-printed equality
    is not trustworthy here). *)

val save : path:string -> Params.t -> Engine.progress -> unit
(** [save ~path params p] atomically replaces [path] with a checkpoint
    of [p], fsynced before the rename.  [params] must be the record the
    run was created from — its digest is what a later {!load} checks. *)

val load : path:string -> Params.t -> (Engine.progress * header, string) result
(** [load ~path params] reads a checkpoint back, refusing (as [Error]
    with a message naming the file and the reason) a missing or
    unreadable file, a non-checkpoint, an unsupported version, a
    parameter digest differing from [digest_of_params params], a corrupt
    body, or a header/state tick disagreement.  On [Ok] the progress is
    ready for {!Engine.resume}; the header is returned so callers can
    warn on a [git_rev] differing from {!current_git_rev}. *)
