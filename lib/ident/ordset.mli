(** Size-augmented balanced search trees.

    A drop-in replacement for [Stdlib.Set] specialized for the simulator's
    needs: [cardinal] is O(1) and [split]/[union] are O(log n)-ish, which
    matters because every DHT join splits a task set and every leave merges
    one, and workload queries ([cardinal]) happen on every tick for every
    node. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) : sig
  type elt = Ord.t
  type t

  val empty : t
  val is_empty : t -> bool
  val cardinal : t -> int
  (** O(1). *)

  val mem : elt -> t -> bool
  val add : elt -> t -> t
  val remove : elt -> t -> t
  val singleton : elt -> t
  val min_elt_opt : t -> elt option
  val max_elt_opt : t -> elt option

  val take_min : t -> (elt * t) option
  (** [take_min t] removes and returns the smallest element. *)

  val split : elt -> t -> t * bool * t
  (** [split x t] is [(lt, present, gt)] partitioning [t] around [x]. *)

  val union : t -> t -> t
  val fold : (elt -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (elt -> unit) -> t -> unit
  val elements : t -> elt list
  val of_list : elt list -> t

  val nth : t -> int -> elt
  (** [nth t i] is the [i]-th smallest element (0-based); O(log n).
      @raise Invalid_argument if [i] is out of bounds. *)

  val of_sorted_array : elt array -> t
  (** O(n) perfectly balanced construction.
      @raise Invalid_argument unless the array is strictly increasing. *)

  val extract_rank : t -> int -> elt * t
  (** [extract_rank t i] removes and returns the [i]-th smallest element
      in a single root-to-leaf pass (one descent where [nth] + [remove]
      costs two). @raise Invalid_argument if [i] is out of bounds. *)

  val extract_ranks : t -> int list -> elt list * t
  (** [extract_ranks t ranks] removes the elements at the given ranks
      (which must be strictly increasing and in bounds) in one tree pass;
      returns them in rank order.  O(|ranks| · log(n/|ranks| + 1) + log n).
      @raise Invalid_argument on unsorted or out-of-bounds ranks. *)

  val take_random_n : rand:(int -> int) -> t -> int -> elt list * t
  (** [take_random_n ~rand t n] removes [min n (cardinal t)] elements
      sampled without replacement, calling [rand c], [rand (c-1)], ... on
      the shrinking count — exactly the draws a [nth]/[remove]
      one-at-a-time loop makes, so results are stream-compatible with the
      loop it replaces — but performs all removals in a single tree pass.
      @raise Invalid_argument if [rand] returns out of [0, bound). *)

  val check_invariants : t -> unit
  (** Validates balance, size counters and ordering; raises
      [Invalid_argument] on violation.  For tests. *)
end
