(** 160-bit identifiers on the Chord ring.

    Identifiers are unsigned 160-bit integers represented as 20-byte
    big-endian strings, so the structural ordering of the representation
    coincides with the numeric ordering.  All ring arithmetic is modulo
    [2^160].  The clockwise direction is the direction of increasing ids
    (wrapping at [2^160 - 1] back to [0]), matching Chord. *)

type t

val bits : int
(** Number of bits in an identifier (160). *)

val bytes_len : int
(** Number of bytes in the representation (20). *)

val zero : t
(** The identifier 0. *)

val max_id : t
(** The identifier [2^160 - 1]. *)

val of_raw_string : string -> t
(** [of_raw_string s] interprets [s] as a big-endian 160-bit integer.
    @raise Invalid_argument if [String.length s <> bytes_len]. *)

val to_raw_string : t -> string
(** Big-endian 20-byte representation. *)

val of_hex : string -> t
(** [of_hex s] parses a 40-character hexadecimal string.
    @raise Invalid_argument on malformed input. *)

val to_hex : t -> string
(** 40-character lowercase hexadecimal rendering. *)

val of_int : int -> t
(** [of_int n] embeds a non-negative OCaml integer.
    @raise Invalid_argument if [n < 0]. *)

val compare : t -> t -> int
(** Numeric (= lexicographic on the representation) comparison. *)

val equal : t -> t -> bool

val hash : t -> int

val sort_array : t array -> unit
(** In-place ascending sort, same result as [Array.sort compare].
    Counting-sorts on the leading 16 bits first, so sorting millions of
    uniformly distributed ids (bulk key loads) costs almost no full id
    comparisons; skewed inputs fall back to comparison sort per
    bucket. *)

val pp : Format.formatter -> t -> unit
(** Prints the first 8 hex digits followed by [..] — enough to tell ids
    apart in logs without drowning them. *)

val pp_full : Format.formatter -> t -> unit
(** Prints all 40 hex digits. *)

(** {1 Modular arithmetic} *)

val succ : t -> t
(** [succ t] is [t + 1 mod 2^160]. *)

val pred : t -> t
(** [pred t] is [t - 1 mod 2^160]. *)

val add : t -> t -> t
(** Addition modulo [2^160]. *)

val sub : t -> t -> t
(** Subtraction modulo [2^160]. *)

val add_pow2 : t -> int -> t
(** [add_pow2 t k] is [t + 2^k mod 2^160]; the start of the [k]-th Chord
    finger interval.  @raise Invalid_argument unless [0 <= k < bits]. *)

val half : t -> t
(** [half t] is [t / 2] (logical shift right by one). *)

val logxor : t -> t -> t
(** Bitwise exclusive or — the Kademlia distance metric. *)

val msb : t -> int option
(** Index of the most significant set bit ([Some 159] for the top bit),
    or [None] for zero.  [msb (logxor a b)] is 159 minus the length of
    [a] and [b]'s common prefix — the Kademlia bucket index. *)

(** {1 Ring geometry} *)

val distance_cw : t -> t -> t
(** [distance_cw a b] is the clockwise distance from [a] to [b]:
    [b - a mod 2^160].  [distance_cw a a = zero]. *)

val midpoint : t -> t -> t
(** [midpoint a b] is the id halfway along the clockwise arc from [a] to
    [b]: [a + (b - a mod 2^160) / 2].  When [a = b] the arc is the whole
    ring and the midpoint is the antipode of [a]. *)

val between_oo : after:t -> before:t -> t -> bool
(** [between_oo ~after ~before x]: is [x] strictly inside the clockwise
    open arc [(after, before)]?  Empty when [after = before]. *)

val between_oc : after:t -> upto:t -> t -> bool
(** [between_oc ~after ~upto x]: is [x] in the clockwise half-open arc
    [(after, upto]]?  This is Chord key responsibility: the node with id
    [upto] whose predecessor is [after] owns exactly these keys.  When
    [after = upto] the arc is the full ring (a lone node owns all keys). *)

val to_fraction : t -> float
(** [to_fraction t] maps [t] to [t / 2^160] in [0, 1); used for the
    unit-circle visualization and for arc-length estimates. *)

val of_fraction : float -> t
(** [of_fraction f] maps [f] in [0, 1) to an id; inverse of
    {!to_fraction} up to float precision.
    @raise Invalid_argument unless [0.0 <= f < 1.0]. *)
