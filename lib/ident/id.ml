type t = string

let bits = 160
let bytes_len = 20

let zero = String.make bytes_len '\x00'
let max_id = String.make bytes_len '\xff'

let of_raw_string s =
  if String.length s <> bytes_len then
    invalid_arg "Id.of_raw_string: expected 20 bytes";
  s

let to_raw_string t = t

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Id.of_hex: not a hex digit"

let of_hex s =
  if String.length s <> 2 * bytes_len then
    invalid_arg "Id.of_hex: expected 40 hex characters";
  String.init bytes_len (fun i ->
      Char.chr ((hex_digit s.[2 * i] lsl 4) lor hex_digit s.[(2 * i) + 1]))

let to_hex t =
  let b = Buffer.create (2 * bytes_len) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) t;
  Buffer.contents b

let of_int n =
  if n < 0 then invalid_arg "Id.of_int: negative";
  let b = Bytes.make bytes_len '\x00' in
  let rec fill i n =
    if n > 0 && i >= 0 then begin
      Bytes.set b i (Char.chr (n land 0xff));
      fill (i - 1) (n lsr 8)
    end
  in
  fill (bytes_len - 1) n;
  Bytes.unsafe_to_string b

let compare = String.compare
let equal = String.equal
let hash = Hashtbl.hash

(* In-place sort, same order as [Array.sort compare].  Generic sort pays
   a closure call plus a full 20-byte [String.compare] per comparison;
   bucketing on the first two bytes first means the comparison-sorted
   runs are tiny (bulk key loads sort millions of SHA-1-uniform ids, so
   expected bucket size is n / 65536) and nearly every comparison is
   skipped.  Skewed inputs (e.g. clustered key workloads) can still pile
   into few buckets, so big buckets fall back to [Array.sort]. *)
let sort_array a =
  let n = Array.length a in
  if n < 4096 then Array.sort compare a
  else begin
    let buckets = 65536 in
    let key (id : t) =
      (Char.code (String.unsafe_get id 0) lsl 8)
      lor Char.code (String.unsafe_get id 1)
    in
    (* Counting sort on the 16-bit prefix: count, prefix-sum, scatter. *)
    let count = Array.make (buckets + 1) 0 in
    for i = 0 to n - 1 do
      let k = key a.(i) in
      count.(k + 1) <- count.(k + 1) + 1
    done;
    for b = 1 to buckets do
      count.(b) <- count.(b) + count.(b - 1)
    done;
    let cur = Array.sub count 0 buckets in
    let out = Array.make n a.(0) in
    for i = 0 to n - 1 do
      let k = key a.(i) in
      out.(cur.(k)) <- a.(i);
      cur.(k) <- cur.(k) + 1
    done;
    Array.blit out 0 a 0 n;
    (* Finish each bucket; the prefix is equal within a bucket, so any
       correct sort of the bucket yields the globally sorted array. *)
    for b = 0 to buckets - 1 do
      let lo = count.(b) and hi = count.(b + 1) - 1 in
      if hi - lo > 32 then begin
        let len = hi - lo + 1 in
        let sub = Array.sub a lo len in
        Array.sort compare sub;
        Array.blit sub 0 a lo len
      end
      else
        for i = lo + 1 to hi do
          let x = a.(i) in
          let j = ref (i - 1) in
          while !j >= lo && compare a.(!j) x > 0 do
            a.(!j + 1) <- a.(!j);
            decr j
          done;
          a.(!j + 1) <- x
        done
    done
  end

let pp ppf t = Format.fprintf ppf "%s.." (String.sub (to_hex t) 0 8)
let pp_full ppf t = Format.pp_print_string ppf (to_hex t)

(* Arithmetic works byte-wise, least-significant byte last, with an
   explicit carry/borrow. *)

let add a b =
  let r = Bytes.create bytes_len in
  let carry = ref 0 in
  for i = bytes_len - 1 downto 0 do
    let s = Char.code a.[i] + Char.code b.[i] + !carry in
    Bytes.set r i (Char.chr (s land 0xff));
    carry := s lsr 8
  done;
  Bytes.unsafe_to_string r

let sub a b =
  let r = Bytes.create bytes_len in
  let borrow = ref 0 in
  for i = bytes_len - 1 downto 0 do
    let d = Char.code a.[i] - Char.code b.[i] - !borrow in
    if d < 0 then begin
      Bytes.set r i (Char.chr (d + 256));
      borrow := 1
    end
    else begin
      Bytes.set r i (Char.chr d);
      borrow := 0
    end
  done;
  Bytes.unsafe_to_string r

let one = of_int 1
let succ t = add t one
let pred t = sub t one

let add_pow2 t k =
  if k < 0 || k >= bits then invalid_arg "Id.add_pow2: exponent out of range";
  let p = Bytes.make bytes_len '\x00' in
  Bytes.set p (bytes_len - 1 - (k / 8)) (Char.chr (1 lsl (k mod 8)));
  add t (Bytes.unsafe_to_string p)

let half t =
  let r = Bytes.create bytes_len in
  let carry = ref 0 in
  for i = 0 to bytes_len - 1 do
    let v = Char.code t.[i] lor (!carry lsl 8) in
    Bytes.set r i (Char.chr (v lsr 1));
    carry := v land 1
  done;
  Bytes.unsafe_to_string r

let logxor a b =
  let r = Bytes.create bytes_len in
  for i = 0 to bytes_len - 1 do
    Bytes.set r i (Char.chr (Char.code a.[i] lxor Char.code b.[i]))
  done;
  Bytes.unsafe_to_string r

let msb t =
  let rec scan_byte i =
    if i >= bytes_len then None
    else
      let v = Char.code t.[i] in
      if v = 0 then scan_byte (i + 1)
      else begin
        let rec top bit = if v lsr bit > 0 then bit else top (bit - 1) in
        Some ((8 * (bytes_len - 1 - i)) + top 7)
      end
  in
  scan_byte 0

let distance_cw a b = sub b a

let half_ring = add_pow2 zero (bits - 1)

let midpoint a b =
  if equal a b then
    (* the arc is the whole ring: halfway round is the antipode *)
    add a half_ring
  else add a (half (distance_cw a b))

let between_oo ~after ~before x =
  if equal after before then false
  else if compare after before < 0 then
    compare after x < 0 && compare x before < 0
  else compare after x < 0 || compare x before < 0

let between_oc ~after ~upto x =
  if equal after upto then true
  else if compare after upto < 0 then
    compare after x < 0 && compare x upto <= 0
  else compare after x < 0 || compare x upto <= 0

(* Use the top 62 bits for a float projection: doubles carry 53 bits of
   mantissa so this is as precise as a float fraction can be. *)
let to_fraction t =
  let acc = ref 0.0 in
  for i = 0 to 7 do
    acc := (!acc *. 256.0) +. float_of_int (Char.code t.[i])
  done;
  !acc /. 18446744073709551616.0 (* 2^64 *)

let of_fraction f =
  if not (f >= 0.0 && f < 1.0) then invalid_arg "Id.of_fraction: out of [0,1)";
  let scaled = f *. 18446744073709551616.0 in
  let b = Bytes.make bytes_len '\x00' in
  (* Extract 8 big-endian bytes of the 64-bit scaled value. *)
  let rec fill i v =
    if i >= 0 then begin
      let byte = v /. 256.0 in
      let hi = Float.of_int (int_of_float (floor byte)) in
      Bytes.set b i (Char.chr (int_of_float (v -. (hi *. 256.0)) land 0xff));
      fill (i - 1) hi
    end
  in
  fill 7 (floor scaled);
  Bytes.unsafe_to_string b
