module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) = struct
  type elt = Ord.t

  (* Height-balanced (AVL-style, slack 2 as in Stdlib.Set) tree carrying
     both height and subtree size. *)
  type t = Empty | Node of { l : t; v : elt; r : t; h : int; s : int }

  let empty = Empty
  let is_empty = function Empty -> true | Node _ -> false
  let height = function Empty -> 0 | Node { h; _ } -> h
  let cardinal = function Empty -> 0 | Node { s; _ } -> s

  let mk l v r =
    let hl = height l and hr = height r in
    Node
      {
        l;
        v;
        r;
        h = (if hl >= hr then hl + 1 else hr + 1);
        s = cardinal l + cardinal r + 1;
      }

  let bal l v r =
    let hl = height l and hr = height r in
    if hl > hr + 2 then
      match l with
      | Empty -> assert false
      | Node { l = ll; v = lv; r = lr; _ } ->
        if height ll >= height lr then mk ll lv (mk lr v r)
        else begin
          match lr with
          | Empty -> assert false
          | Node { l = lrl; v = lrv; r = lrr; _ } ->
            mk (mk ll lv lrl) lrv (mk lrr v r)
        end
    else if hr > hl + 2 then
      match r with
      | Empty -> assert false
      | Node { l = rl; v = rv; r = rr; _ } ->
        if height rr >= height rl then mk (mk l v rl) rv rr
        else begin
          match rl with
          | Empty -> assert false
          | Node { l = rll; v = rlv; r = rlr; _ } ->
            mk (mk l v rll) rlv (mk rlr rv rr)
        end
    else mk l v r

  let singleton v = mk Empty v Empty

  let rec add x = function
    | Empty -> singleton x
    | Node { l; v; r; _ } as node ->
      let c = Ord.compare x v in
      if c = 0 then node
      else if c < 0 then
        let l' = add x l in
        if l' == l then node else bal l' v r
      else
        let r' = add x r in
        if r' == r then node else bal l v r'

  let rec mem x = function
    | Empty -> false
    | Node { l; v; r; _ } ->
      let c = Ord.compare x v in
      c = 0 || mem x (if c < 0 then l else r)

  let rec min_elt_opt = function
    | Empty -> None
    | Node { l = Empty; v; _ } -> Some v
    | Node { l; _ } -> min_elt_opt l

  let rec max_elt_opt = function
    | Empty -> None
    | Node { r = Empty; v; _ } -> Some v
    | Node { r; _ } -> max_elt_opt r

  let rec remove_min = function
    | Empty -> invalid_arg "Ordset.remove_min"
    | Node { l = Empty; v; r; _ } -> (v, r)
    | Node { l; v; r; _ } ->
      let m, l' = remove_min l in
      (m, bal l' v r)

  (* Concatenate two trees given every element of [l] < every element of
     [r]; rebalances along the spine, O(|height l - height r|). *)
  let rec join l v r =
    match (l, r) with
    | Empty, _ -> add v r
    | _, Empty -> add v l
    | Node { l = ll; v = lv; r = lr; h = hl; _ }, Node { l = rl; v = rv; r = rr; h = hr; _ }
      ->
      if hl > hr + 2 then bal ll lv (join lr v r)
      else if hr > hl + 2 then bal (join l v rl) rv rr
      else mk l v r

  let concat l r =
    match (l, r) with
    | Empty, t | t, Empty -> t
    | _ ->
      let m, r' = remove_min r in
      join l m r'

  let rec remove x = function
    | Empty -> Empty
    | Node { l; v; r; _ } as node ->
      let c = Ord.compare x v in
      if c = 0 then concat l r
      else if c < 0 then
        let l' = remove x l in
        if l' == l then node else bal l' v r
      else
        let r' = remove x r in
        if r' == r then node else bal l v r'

  let take_min = function
    | Empty -> None
    | t ->
      let m, t' = remove_min t in
      Some (m, t')

  let rec split x = function
    | Empty -> (Empty, false, Empty)
    | Node { l; v; r; _ } ->
      let c = Ord.compare x v in
      if c = 0 then (l, true, r)
      else if c < 0 then
        let ll, pres, lr = split x l in
        (ll, pres, join lr v r)
      else
        let rl, pres, rr = split x r in
        (join l v rl, pres, rr)

  let rec union t1 t2 =
    match (t1, t2) with
    | Empty, t | t, Empty -> t
    | Node { l = l1; v = v1; r = r1; _ }, _ ->
      let l2, _, r2 = split v1 t2 in
      join (union l1 l2) v1 (union r1 r2)

  let rec fold f t acc =
    match t with
    | Empty -> acc
    | Node { l; v; r; _ } -> fold f r (f v (fold f l acc))

  let rec iter f = function
    | Empty -> ()
    | Node { l; v; r; _ } ->
      iter f l;
      f v;
      iter f r

  let elements t = List.rev (fold (fun v acc -> v :: acc) t [])
  let of_list l = List.fold_left (fun acc v -> add v acc) empty l

  let rec nth t i =
    match t with
    | Empty -> invalid_arg "Ordset.nth: index out of bounds"
    | Node { l; v; r; _ } ->
      let cl = cardinal l in
      if i < cl then nth l i
      else if i = cl then v
      else nth r (i - cl - 1)

  (* O(n) balanced construction from a strictly increasing array. *)
  let of_sorted_array a =
    let len = Array.length a in
    for i = 1 to len - 1 do
      if Ord.compare a.(i - 1) a.(i) >= 0 then
        invalid_arg "Ordset.of_sorted_array: not strictly increasing"
    done;
    let rec build lo hi =
      if lo >= hi then Empty
      else
        let mid = (lo + hi) / 2 in
        mk (build lo mid) a.(mid) (build (mid + 1) hi)
    in
    build 0 len

  let rec extract_rank t i =
    match t with
    | Empty -> invalid_arg "Ordset.extract_rank: rank out of bounds"
    | Node { l; v; r; _ } ->
      let cl = cardinal l in
      if i < cl then
        let x, l' = extract_rank l i in
        (x, bal l' v r)
      else if i = cl then (v, concat l r)
      else
        let x, r' = extract_rank r (i - cl - 1) in
        (x, bal l v r')

  (* Removes the elements at the given ranks (strictly increasing, all in
     bounds) in a single descent: ranks are partitioned per subtree and
     the survivors reassembled with [join]/[concat], so extracting [n]
     ranks costs O(n log(k/n + 1) + log k) rather than n full
     root-to-leaf searches. *)
  let extract_ranks t ranks =
    let check_sorted =
      let rec go = function
        | a :: (b :: _ as tl) ->
          if a >= b then
            invalid_arg "Ordset.extract_ranks: ranks not strictly increasing"
          else go tl
        | _ -> ()
      in
      go
    in
    check_sorted ranks;
    (match ranks with
    | i :: _ when i < 0 -> invalid_arg "Ordset.extract_ranks: negative rank"
    | _ -> ());
    let rec go t ranks =
      match ranks with
      | [] -> ([], t)
      | _ -> (
        match t with
        | Empty -> invalid_arg "Ordset.extract_ranks: rank out of bounds"
        | Node { l; v; r; _ } ->
          let cl = cardinal l in
          let rec split3 acc = function
            | i :: tl when i < cl -> split3 (i :: acc) tl
            | rest -> (List.rev acc, rest)
          in
          let left_ranks, rest = split3 [] ranks in
          let here, right_ranks =
            match rest with i :: tl when i = cl -> (true, tl) | _ -> (false, rest)
          in
          let right_ranks = List.map (fun i -> i - cl - 1) right_ranks in
          let lelts, l' = go l left_ranks in
          let relts, r' = go r right_ranks in
          let t' = if here then concat l' r' else join l' v r' in
          let tail = if here then v :: relts else relts in
          (lelts @ tail, t'))
    in
    go t ranks

  (* Bulk random sampling without replacement.  Draws [rand c], [rand
     (c-1)], ... exactly as a caller looping [nth]/[remove] would, so a
     deterministic [rand] stream selects the same elements as the
     one-at-a-time loop it replaces — then removes them all in one tree
     pass via [extract_ranks]. *)
  let take_random_n ~rand t n =
    let c = cardinal t in
    let n = min n c in
    if n <= 0 then ([], t)
    else if n = 1 then begin
      (* The common per-tick budget: one draw, one descent. *)
      let i = rand c in
      if i < 0 || i >= c then
        invalid_arg "Ordset.take_random_n: rand out of range";
      let x, t' = extract_rank t i in
      ([ x ], t')
    end
    else begin
      (* Convert each draw (an index into the shrinking set) to a rank in
         the original tree: the i-th not-yet-chosen rank.  [chosen] stays
         sorted ascending; n is a per-tick budget, so the O(n^2) list walk
         is negligible next to the tree work. *)
      let chosen = ref [] in
      for j = 0 to n - 1 do
        let i = rand (c - j) in
        if i < 0 || i >= c - j then
          invalid_arg "Ordset.take_random_n: rand out of range";
        (* Every already-chosen rank <= cur shifts the target right by
           one; past the first gap the remaining ranks are all larger. *)
        let rec insert acc cur = function
          | r :: tl when r <= cur -> insert (r :: acc) (cur + 1) tl
          | rest -> List.rev_append acc (cur :: rest)
        in
        chosen := insert [] i !chosen
      done;
      extract_ranks t !chosen
    end

  let check_invariants t =
    let rec go = function
      | Empty -> (0, 0, None, None)
      | Node { l; v; r; h; s } ->
        let hl, sl, minl, maxl = go l in
        let hr, sr, minr, maxr = go r in
        if abs (hl - hr) > 2 then invalid_arg "Ordset: unbalanced";
        if h <> 1 + max hl hr then invalid_arg "Ordset: bad height";
        if s <> sl + sr + 1 then invalid_arg "Ordset: bad size";
        (match maxl with
        | Some m when Ord.compare m v >= 0 -> invalid_arg "Ordset: order (left)"
        | _ -> ());
        (match minr with
        | Some m when Ord.compare v m >= 0 -> invalid_arg "Ordset: order (right)"
        | _ -> ());
        let mn = match minl with Some m -> Some m | None -> Some v in
        let mx = match maxr with Some m -> Some m | None -> Some v in
        (h, s, mn, mx)
    in
    ignore (go t)
end
