(** Shared helpers for experiment tables. *)

val p : ?seed:int -> int -> int -> Params.t
(** [p nodes tasks] is {!Params.default} with the given seed — the
    baseline every experiment table perturbs. *)

val aggregate :
  ?trials:int -> Params.t -> Strategy.t -> Runner.aggregate
(** Multi-trial run of one (parameters, strategy) cell. *)

val row :
  label:string -> Runner.aggregate -> string
(** One formatted table row: label, mean±sd factor, range, abort count. *)

val header : string -> string
(** Section header with an underline. *)
