(** Shared helpers for experiment tables. *)

val p : ?seed:int -> int -> int -> Params.t
(** [p nodes tasks] is {!Params.default} with the given seed — the
    baseline every experiment table perturbs. *)

val aggregate :
  ?trials:int -> ?trial_timeout:float -> Params.t -> Strategy.t ->
  Runner.aggregate
(** Multi-trial run of one (parameters, strategy) cell.
    [trial_timeout] arms the per-trial watchdog
    ({!Runner.run_trials}). *)

val row :
  label:string -> Runner.aggregate -> string
(** One formatted table row: label, mean±sd factor, range, abort count. *)

val header : string -> string
(** Section header with an underline. *)
