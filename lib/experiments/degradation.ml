(* Graceful-degradation sweep: how much runtime factor each strategy
   loses as control-plane message loss climbs.  Data-plane traffic
   (joins, key transfers, recovery) stays reliable — see lib/faults — so
   every cell still terminates and conserves keys; what degrades is the
   *quality* of placement decisions.  The interesting contrast is
   zero-message strategies (none, churn, random, neighbor estimate,
   static-vnodes), which should be flat across the whole row, against
   the query-driven ones (smart-neighbor, invitation, strength-aware),
   which pay for every lost reply with retries or a dumber pick. *)

type cell = {
  drop : float;
  strategy : Strategy.t;
  aggregate : Runner.aggregate;
}

let rates = [ 0.0; 0.05; 0.1; 0.2; 0.5 ]

let plan drop = { Faults.none with Faults.drop }

let run ?(trials = 3) ?(seed = 42) ?(rates = rates) ?(nodes = 100)
    ?(tasks = 10_000) ?journal ?trial_timeout () =
  let grid =
    List.concat_map
      (fun drop -> List.map (fun strategy -> (drop, strategy)) Strategy.all)
      rates
  in
  (* Disjoint per-cell seed ranges; see Runner.stride_seed. *)
  List.mapi
    (fun index (drop, strategy) ->
      let cell_seed = Runner.stride_seed ~base:seed ~trials ~index in
      let params =
        Strategy.default_params strategy
          {
            (Harness.p ~seed:cell_seed nodes tasks) with
            Params.churn_rate = 0.01;
            failure_rate = 0.005;
            sybil_threshold = 1;
            faults = plan drop;
          }
      in
      let key =
        Journal.key
          [
            ("experiment", Json_out.String "degradation");
            ("drop", Json_out.Float drop);
            ("strategy", Json_out.String (Strategy.name strategy));
            ("nodes", Json_out.Int nodes);
            ("tasks", Json_out.Int tasks);
            ("seed", Json_out.Int cell_seed);
            ("trials", Json_out.Int trials);
          ]
      in
      let aggregate =
        Journal.cell journal ~key ~encode:Journal.aggregate_to_json
          ~decode:Journal.aggregate_of_json (fun () ->
            Harness.aggregate ~trials ?trial_timeout params strategy)
      in
      { drop; strategy; aggregate })
    grid

let print_table cells =
  let buf = Buffer.create 2048 in
  let rates = List.sort_uniq compare (List.map (fun c -> c.drop) cells) in
  Buffer.add_string buf
    (Harness.header "Degradation: mean runtime factor vs control-plane drop rate");
  Buffer.add_string buf (Printf.sprintf "%-18s" "strategy");
  List.iter
    (fun r -> Buffer.add_string buf (Printf.sprintf " | p=%-6g" r))
    rates;
  Buffer.add_char buf '\n';
  List.iter
    (fun strategy ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s" (Strategy.name strategy));
      List.iter
        (fun rate ->
          match
            List.find_opt
              (fun c -> c.drop = rate && c.strategy = strategy)
              cells
          with
          | Some c ->
            Buffer.add_string buf
              (Printf.sprintf " | %8.3f" c.aggregate.Runner.mean_factor)
          | None -> Buffer.add_string buf (Printf.sprintf " | %8s" "-"))
        rates;
      Buffer.add_char buf '\n')
    Strategy.all;
  Buffer.contents buf
