let p ?(seed = 42) nodes tasks =
  { (Params.default ~nodes ~tasks) with Params.seed }

let aggregate ?trials ?trial_timeout params strategy =
  Runner.run_trials ?trials ~domains:(Scale.domains ()) ?trial_timeout params
    (Strategy.make strategy)

let row ~label (a : Runner.aggregate) =
  Printf.sprintf "  %-42s factor=%6.3f +/-%5.3f  [%6.3f, %6.3f]%s\n" label
    a.Runner.mean_factor a.Runner.stddev_factor a.Runner.min_factor
    a.Runner.max_factor
    (if a.Runner.aborted > 0 then Printf.sprintf "  (%d aborted!)" a.Runner.aborted
     else "")

let header title = Printf.sprintf "%s\n%s\n" title (String.make (String.length title) '-')
