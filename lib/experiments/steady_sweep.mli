(** Open-system steady state: strategy × arrival rate × churn.

    The paper's experiments race strategies to drain a fixed batch; this
    sweep instead holds each strategy under {e continuous} Poisson task
    arrival ({!Arrivals}) for a fixed horizon and reads the steady-state
    aggregates from {!Runner.run_trials} — windowed queue-length and
    sojourn percentiles with the first half of each run discarded as
    warm-up.  The question it answers is the open-system version of the
    paper's: once tasks never stop coming, which balancing strategy
    keeps sojourn tails flat as the offered load and the churn rate
    climb? *)

type cell = {
  strategy : Strategy.t;
  rate : float;  (** Poisson arrival rate, tasks/tick *)
  churn : float;  (** ambient churn probability per machine per tick *)
  aggregate : Runner.aggregate;
      (** open-system aggregate: the factor family is NaN here, the
          steady fields are live *)
}

val strategies : Strategy.t list
(** Default strategy column: baseline, random, smart-neighbor,
    invitation — one per family. *)

val rates : float list
(** Default light / moderate / saturating offered loads. *)

val churn_rates : float list

val run :
  ?trials:int ->
  ?seed:int ->
  ?nodes:int ->
  ?tasks:int ->
  ?horizon:int ->
  ?window:int ->
  ?strategies:Strategy.t list ->
  ?rates:float list ->
  ?churn_rates:float list ->
  ?journal:Journal.t ->
  ?trial_timeout:float ->
  unit ->
  cell list
(** Grid order: strategies outermost, then rates, then churn — matching
    {!print_table}'s grouping.  [tasks] seeds the initial batch (the
    queue the system starts from); [horizon]/[window] shape every cell's
    arrival plan.  [journal] makes the sweep resumable (completed cells
    skipped — {!Journal}); [trial_timeout] arms the per-trial watchdog
    ({!Runner.run_trials}). *)

val print_table : cell list -> string
