(* Head-to-head: the Sybil strategy family against the two non-Sybil
   competitors (diffusive transfers and range reassignment), on the same
   footing.  Each grid cell runs the full batch simulation for one
   (strategy, churn, reply-drop) combination, so the comparison covers
   the regimes the paper cares about: a calm network, ambient churn, a
   lossy control plane, and both at once.  Two traffic readings separate
   the families mechanically — [work_transfers] (tasks moved without an
   ownership change; nonzero only for diffusive) and [key_transfers]
   (ownership handovers; the Sybil and reassignment currencies).

   The ChordReduce leg reruns the paper's motivating workload: warm each
   strategy's ring for a few decision periods, then run a word-count
   MapReduce over the resulting vnode set.  The map-phase makespan is
   the quantity the balancing families are supposed to shrink. *)

type cell = {
  strategy : Strategy.t;
  churn : float;
  drop : float;
  mean_work_transfers : float;
  mean_key_transfers : float;
  aggregate : Runner.aggregate;
}

type makespan = {
  ms_strategy : Strategy.t;
  warm_vnodes : int;
  map_makespan : int;
  reduce_makespan : int;
  total_makespan : int;
}

(* One representative per family: the no-balancing floor, the two
   paper Sybil strategies (proactive and reactive), and the two
   non-Sybil competitors under test. *)
let families =
  [
    Strategy.No_strategy;
    Strategy.Random_injection;
    Strategy.Invitation;
    Strategy.Diffusive;
    Strategy.Range_reassignment;
  ]

let churns = [ 0.0; 0.01 ]
let drops = [ 0.0; 0.05 ]

(* Journal payload: the per-cell transfer means plus the aggregate; the
   coordinates live in the key and are re-attached on decode. *)
let cell_to_json c =
  Json_out.Obj
    [
      ("mean_work_transfers", Json_out.Float c.mean_work_transfers);
      ("mean_key_transfers", Json_out.Float c.mean_key_transfers);
      ("aggregate", Journal.aggregate_to_json c.aggregate);
    ]

let cell_of_json ~strategy ~churn ~drop v =
  let ( let* ) = Option.bind in
  let flt name = Option.bind (Json_in.member name v) Json_in.to_float in
  let* mean_work_transfers = flt "mean_work_transfers" in
  let* mean_key_transfers = flt "mean_key_transfers" in
  let* aggregate =
    Option.bind (Json_in.member "aggregate" v) Journal.aggregate_of_json
  in
  Some
    { strategy; churn; drop; mean_work_transfers; mean_key_transfers; aggregate }

let run ?(trials = 3) ?(seed = 42) ?(nodes = 48) ?(tasks = 4_000)
    ?(families = families) ?(churns = churns) ?(drops = drops) ?journal
    ?trial_timeout () =
  let grid =
    List.concat_map
      (fun strategy ->
        List.concat_map
          (fun churn -> List.map (fun drop -> (strategy, churn, drop)) drops)
          churns)
      families
  in
  (* Disjoint per-cell seed ranges; see Runner.stride_seed. *)
  List.mapi
    (fun index (strategy, churn, drop) ->
      let cell_seed = Runner.stride_seed ~base:seed ~trials ~index in
      let params =
        Strategy.default_params strategy
          {
            (Params.default ~nodes ~tasks) with
            Params.seed = cell_seed;
            churn_rate = churn;
            faults = { Faults.none with Faults.drop };
          }
      in
      let key =
        Journal.key
          [
            ("experiment", Json_out.String "head_to_head");
            ("strategy", Json_out.String (Strategy.name strategy));
            ("churn", Json_out.Float churn);
            ("drop", Json_out.Float drop);
            ("nodes", Json_out.Int nodes);
            ("tasks", Json_out.Int tasks);
            ("seed", Json_out.Int cell_seed);
            ("trials", Json_out.Int trials);
          ]
      in
      Journal.cell journal ~key ~encode:cell_to_json
        ~decode:(cell_of_json ~strategy ~churn ~drop) (fun () ->
          let results =
            Runner.run_all ~trials ?trial_timeout params (Strategy.make strategy)
          in
          let mean_msg field =
            Descriptive.mean
              (Array.map
                 (fun (r : Engine.result) ->
                   float_of_int (field r.Engine.messages))
                 results)
          in
          {
            strategy;
            churn;
            drop;
            mean_work_transfers = mean_msg (fun m -> m.Messages.work_transfers);
            mean_key_transfers = mean_msg (fun m -> m.Messages.key_transfers);
            aggregate = Runner.aggregate_of params results;
          }))
    grid

(* A deterministic corpus: enough repeated vocabulary that the shuffle
   phase concentrates load on the hot words' owners. *)
let corpus =
  List.concat_map
    (fun i ->
      [
        Printf.sprintf "the quick brown fox jumps over the lazy dog %d" i;
        Printf.sprintf "pack my box with five dozen liquor jugs %d" i;
        "the autonomous ring balances the autonomous ring";
        "sybil sybil churn churn churn load load balance";
      ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let makespans ?(seed = 42) ?(nodes = 24) ?(tasks = 1_200) ?(warm_ticks = 30)
    ?(families = families) () =
  List.mapi
    (fun index strategy ->
      let params =
        Strategy.default_params strategy
          { (Params.default ~nodes ~tasks) with Params.seed = seed + index }
      in
      let state = State.create params in
      let strat = Strategy.make strategy () in
      (* The engine's tick order minus the planes this leg leaves off
         (faults, arrivals, adversary): decide, consume, churn. *)
      for _ = 1 to warm_ticks do
        strat.Engine.decide state;
        ignore (State.consume_tick state);
        State.apply_churn state;
        State.advance_tick state
      done;
      let workers = Array.of_list (Dht.vnode_ids state.State.dht) in
      let input = Mapreduce.chunk_input corpus in
      let r = Mapreduce.run ~workers ~input Mapreduce.word_count in
      {
        ms_strategy = strategy;
        warm_vnodes = Array.length workers;
        map_makespan = r.Mapreduce.map_stats.Mapreduce.makespan;
        reduce_makespan = r.Mapreduce.reduce_stats.Mapreduce.makespan;
        total_makespan = r.Mapreduce.total_makespan;
      })
    families

let print_table cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-15s %6s %6s %14s %13s %12s %8s\n" "strategy" "churn"
       "drop" "work_transfers" "key_transfers" "mean factor" "aborted");
  List.iter
    (fun c ->
      let a = c.aggregate in
      Buffer.add_string buf
        (Printf.sprintf "%-15s %6.3f %6.3f %14.1f %13.1f %12.3f %8d\n"
           (Strategy.name c.strategy) c.churn c.drop c.mean_work_transfers
           c.mean_key_transfers a.Runner.mean_factor a.Runner.aborted))
    cells;
  Buffer.contents buf

let print_makespans rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-15s %8s %12s %15s %14s\n" "strategy" "vnodes"
       "map_makespan" "reduce_makespan" "total_makespan");
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "%-15s %8d %12d %15d %14d\n"
           (Strategy.name m.ms_strategy) m.warm_vnodes m.map_makespan
           m.reduce_makespan m.total_makespan))
    rows;
  Buffer.contents buf
