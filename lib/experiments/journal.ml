(* A sweep journal is a JSONL file with one fsynced line per completed
   cell: {"key": <canonical key string>, "cell": <cell payload>}.  A
   killed sweep rerun with the same journal path skips every cell whose
   key is already present — exactly those cells, and no others, because
   cells are independent by construction (Runner.stride_seed gives each
   a disjoint trial-seed range) and the key embeds everything that
   decides a cell's result: experiment name, cell coordinates, the
   strided base seed and the trial count.  Change --seed or --trials and
   every key changes with them, so stale lines can never be replayed
   into a differently-configured sweep.

   Each line is flushed *and fsynced* before the cell is reported
   upstream: a crash loses at most the cell that was being appended,
   and a torn final line (the only kind fsync-per-line can leave) is
   skipped on reload by the total parser. *)

type t = {
  path : string;
  cells : (string, Json_out.t) Hashtbl.t;
  oc : out_channel;
  mutable loaded : int;  (** cells recovered from a pre-existing file *)
}

let key fields = Json_out.to_string (Json_out.Obj fields)

let parse_line line =
  match Json_in.parse line with
  | Error _ -> None
  | Ok v -> (
    match (Json_in.member "key" v, Json_in.member "cell" v) with
    | Some k, Some cell -> (
      match Json_in.to_string k with
      | Some k -> Some (k, cell)
      | None -> None)
    | _ -> None)

let open_ path =
  let cells = Hashtbl.create 64 in
  let loaded = ref 0 in
  let torn_tail = ref false in
  (if Sys.file_exists path then begin
     let ic = open_in_bin path in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         (try
            while true do
              match parse_line (input_line ic) with
              | Some (k, cell) ->
                (* Last write wins, matching append order. *)
                Hashtbl.replace cells k cell;
                incr loaded
              | None -> ()
            done
          with End_of_file -> ());
         (* A crash mid-append can leave the final line unterminated; a
            plain append would then concatenate the next record onto
            the torn tail, corrupting a *good* line.  Seal the tail
            with a newline so the damage stays confined to the line
            already lost. *)
         let len = in_channel_length ic in
         if len > 0 then begin
           seek_in ic (len - 1);
           if input_char ic <> '\n' then torn_tail := true
         end)
   end);
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  if !torn_tail then output_char oc '\n';
  { path; cells; oc; loaded = !loaded }

let path t = t.path
let loaded t = t.loaded
let find t ~key = Hashtbl.find_opt t.cells key

let record t ~key v =
  output_string t.oc
    (Json_out.to_string
       (Json_out.Obj [ ("key", Json_out.String key); ("cell", v) ]));
  output_char t.oc '\n';
  flush t.oc;
  Unix.fsync (Unix.descr_of_out_channel t.oc);
  Hashtbl.replace t.cells key v

let close t = close_out_noerr t.oc

(* The uniform skip-or-compute step every sweep cell goes through.  A
   present key whose payload fails to decode (hand-edited file, codec
   from another era) falls back to recomputing — and overwrites the bad
   line's entry — rather than crashing the sweep. *)
let cell journal ~key:k ~encode ~decode compute =
  match journal with
  | None -> compute ()
  | Some j -> (
    match Option.bind (find j ~key:k) decode with
    | Some v -> v
    | None ->
      let v = compute () in
      record j ~key:k (encode v);
      v)

(* Full-fidelity aggregate codec: every field of Runner.aggregate, so a
   journal-resumed sweep prints and exports byte-identically to an
   uninterrupted one.  Floats survive the trip exactly (Json_out renders
   %.17g, Json_in reads it back; NaN travels as null). *)
let aggregate_to_json (a : Runner.aggregate) =
  Json_out.Obj
    [
      ("trials", Json_out.Int a.Runner.trials);
      ("open_system", Json_out.Bool a.Runner.open_system);
      ("mean_factor", Json_out.Float a.Runner.mean_factor);
      ("stddev_factor", Json_out.Float a.Runner.stddev_factor);
      ("min_factor", Json_out.Float a.Runner.min_factor);
      ("max_factor", Json_out.Float a.Runner.max_factor);
      ("mean_ticks", Json_out.Float a.Runner.mean_ticks);
      ("mean_ideal", Json_out.Float a.Runner.mean_ideal);
      ("aborted", Json_out.Int a.Runner.aborted);
      ("finished", Json_out.Int a.Runner.finished);
      ("timed_out", Json_out.Int a.Runner.timed_out);
      ("mean_factor_finished", Json_out.Float a.Runner.mean_factor_finished);
      ("mean_ticks_finished", Json_out.Float a.Runner.mean_ticks_finished);
      ("mean_messages", Json_out.Float a.Runner.mean_messages);
      ("mean_tasks_lost", Json_out.Float a.Runner.mean_tasks_lost);
      ("mean_arrived", Json_out.Float a.Runner.mean_arrived);
      ("steady_queue_p50", Json_out.Float a.Runner.steady_queue_p50);
      ("steady_queue_p95", Json_out.Float a.Runner.steady_queue_p95);
      ("steady_queue_p99", Json_out.Float a.Runner.steady_queue_p99);
      ("steady_sojourn_p50", Json_out.Float a.Runner.steady_sojourn_p50);
      ("steady_sojourn_p95", Json_out.Float a.Runner.steady_sojourn_p95);
      ("steady_sojourn_p99", Json_out.Float a.Runner.steady_sojourn_p99);
    ]

let aggregate_of_json v =
  let ( let* ) = Option.bind in
  let int name = Option.bind (Json_in.member name v) Json_in.to_int in
  let flt name = Option.bind (Json_in.member name v) Json_in.to_float in
  let* trials = int "trials" in
  let* open_system = Option.bind (Json_in.member "open_system" v) Json_in.to_bool in
  let* mean_factor = flt "mean_factor" in
  let* stddev_factor = flt "stddev_factor" in
  let* min_factor = flt "min_factor" in
  let* max_factor = flt "max_factor" in
  let* mean_ticks = flt "mean_ticks" in
  let* mean_ideal = flt "mean_ideal" in
  let* aborted = int "aborted" in
  let* finished = int "finished" in
  let* timed_out = int "timed_out" in
  let* mean_factor_finished = flt "mean_factor_finished" in
  let* mean_ticks_finished = flt "mean_ticks_finished" in
  let* mean_messages = flt "mean_messages" in
  let* mean_tasks_lost = flt "mean_tasks_lost" in
  let* mean_arrived = flt "mean_arrived" in
  let* steady_queue_p50 = flt "steady_queue_p50" in
  let* steady_queue_p95 = flt "steady_queue_p95" in
  let* steady_queue_p99 = flt "steady_queue_p99" in
  let* steady_sojourn_p50 = flt "steady_sojourn_p50" in
  let* steady_sojourn_p95 = flt "steady_sojourn_p95" in
  let* steady_sojourn_p99 = flt "steady_sojourn_p99" in
  Some
    {
      Runner.trials;
      open_system;
      mean_factor;
      stddev_factor;
      min_factor;
      max_factor;
      mean_ticks;
      mean_ideal;
      aborted;
      finished;
      timed_out;
      mean_factor_finished;
      mean_ticks_finished;
      mean_messages;
      mean_tasks_lost;
      mean_arrived;
      steady_queue_p50;
      steady_queue_p95;
      steady_queue_p99;
      steady_sojourn_p50;
      steady_sojourn_p95;
      steady_sojourn_p99;
    }
