(** Head-to-head: Sybil strategies versus the non-Sybil competitors.

    A (strategy family × churn × reply-drop) grid on the full batch
    simulation, plus a ChordReduce makespan leg: warm each strategy's
    ring, then run a word-count MapReduce ({!Mapreduce.word_count}) over
    the resulting vnode set and report the per-phase makespans the
    balancing families are supposed to shrink.

    Per cell, [mean_work_transfers] (tasks moved with no ownership
    change — nonzero only for {!Strategy.Diffusive}) and
    [mean_key_transfers] (ownership handovers — the Sybil and
    range-reassignment currencies) separate the families mechanically
    alongside the usual runtime-factor aggregate. *)

type cell = {
  strategy : Strategy.t;
  churn : float;  (** per-node per-tick churn rate for this cell *)
  drop : float;  (** control-plane reply-drop probability *)
  mean_work_transfers : float;  (** mean diffusive transfers per trial *)
  mean_key_transfers : float;  (** mean ownership handovers per trial *)
  aggregate : Runner.aggregate;
}

type makespan = {
  ms_strategy : Strategy.t;
  warm_vnodes : int;  (** ring size after the warm-up ticks *)
  map_makespan : int;
  reduce_makespan : int;
  total_makespan : int;
}

val families : Strategy.t list
(** Default [none; random; invitation; diffusive; range-reassign] — one
    representative per family plus the no-balancing floor. *)

val churns : float list
(** Default [0.0; 0.01]. *)

val drops : float list
(** Default [0.0; 0.05]. *)

val run :
  ?trials:int ->
  ?seed:int ->
  ?nodes:int ->
  ?tasks:int ->
  ?families:Strategy.t list ->
  ?churns:float list ->
  ?drops:float list ->
  ?journal:Journal.t ->
  ?trial_timeout:float ->
  unit ->
  cell list
(** Cells in [families] × [churns] × [drops] order, per-cell seeds
    strided by {!Runner.stride_seed} so no two cells share a trial
    seed.  [journal] makes the sweep resumable (completed cells skipped
    — {!Journal}); [trial_timeout] arms the per-trial watchdog
    ({!Runner.run_trials}). *)

val makespans :
  ?seed:int ->
  ?nodes:int ->
  ?tasks:int ->
  ?warm_ticks:int ->
  ?families:Strategy.t list ->
  unit ->
  makespan list
(** The ChordReduce leg: one warmed ring and one word-count job per
    family, on a deterministic corpus. *)

val print_table : cell list -> string
val print_makespans : makespan list -> string
