let p = Harness.p

let section ?trials title rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Harness.header title);
  List.iter
    (fun (label, params, strategy) ->
      Buffer.add_string buf
        (Harness.row ~label (Harness.aggregate ?trials params strategy)))
    rows;
  Buffer.contents buf

let sybil_threshold ?trials ?(seed = 42) () =
  let with_thr params t = { params with Params.sybil_threshold = t } in
  let rows =
    List.concat_map
      (fun (nodes, tasks, note) ->
        List.map
          (fun thr ->
            ( Printf.sprintf "RI %dn/%dt threshold=%d%s" nodes tasks thr note,
              with_thr (p ~seed nodes tasks) thr,
              Strategy.Random_injection ))
          [ 0; 5; 10 ])
      [
        (1000, 100_000, " (paper: >=0.1 gain)");
        (100, 10_000, " (paper: >=0.1 gain)");
        (1000, 1_000_000, " (paper: no gain)");
      ]
  in
  section ?trials "A1: sybilThreshold under Random Injection" rows

let max_sybils ?trials ?(seed = 42) () =
  let base = p ~seed 1000 100_000 in
  let hetero =
    {
      base with
      Params.heterogeneity = Params.Heterogeneous;
      work = Params.Strength_per_tick;
    }
  in
  let rows =
    List.concat_map
      (fun (label, params) ->
        List.map
          (fun m ->
            ( Printf.sprintf "RI %s maxSybils=%d" label m,
              { params with Params.max_sybils = m },
              Strategy.Random_injection ))
          [ 5; 10 ])
      [ ("homogeneous 1000n/1e5t", base); ("heterogeneous 1000n/1e5t", hetero) ]
  in
  section ?trials "A2: maxSybils (paper: no homogeneous effect; hurts heterogeneous)"
    rows

let num_successors ?trials ?(seed = 42) () =
  let rows =
    List.map
      (fun k ->
        ( Printf.sprintf "neighbor 1000n/1e5t successors=%d" k,
          { (p ~seed 1000 100_000) with Params.num_successors = k },
          Strategy.Neighbor_injection ))
      [ 5; 10 ]
  in
  section ?trials "A3: numSuccessors under Neighbor Injection (paper: ~0.3 gain)" rows

let churn_with_injection ?trials ?(seed = 42) () =
  let rows =
    List.map
      (fun rate ->
        ( Printf.sprintf "RI 1000n/1e5t churn=%g" rate,
          { (p ~seed 1000 100_000) with Params.churn_rate = rate },
          Strategy.Random_injection ))
      [ 0.0; 0.001; 0.01 ]
    (* The paper never tested churn on Invitation (its footnote 4,
       suspecting "the same effect as in the neighbor strategy");
       measure it. *)
    @ List.map
        (fun rate ->
          ( Printf.sprintf "invitation 1000n/1e5t churn=%g (fn. 4)" rate,
            { (p ~seed 1000 100_000) with Params.churn_rate = rate },
            Strategy.Invitation ))
        [ 0.0; 0.01 ]
  in
  section ?trials "A4: ambient churn under Random Injection (paper: ~+0.06 at 0.01)"
    rows

let messages ?(seed = 42) () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Harness.header "A5: message accounting per strategy (one 1000n/1e5t run)");
  List.iter
    (fun strategy ->
      let params =
        Strategy.default_params strategy (p ~seed 1000 100_000)
      in
      let r = Engine.run params (Strategy.make strategy ()) in
      Buffer.add_string buf
        (Format.asprintf "  %-16s factor=%6.3f  %a\n" (Strategy.name strategy)
           r.Engine.factor Messages.pp r.Engine.messages))
    Strategy.all;
  Buffer.contents buf

let invitation_median_split ?trials ?(seed = 42) () =
  let rows =
    List.map
      (fun (label, median) ->
        ( "invitation 1000n/1e5t split=" ^ label,
          { (p ~seed 1000 100_000) with Params.split_at_median = median },
          Strategy.Invitation ))
      [ ("arc-midpoint", false); ("median-key", true) ]
  in
  section ?trials "EXT: Invitation split point (extension)" rows

let neighbor_avoid_repeats ?trials ?(seed = 42) () =
  let rows =
    List.map
      (fun (label, avoid) ->
        ( "neighbor 1000n/1e5t failed-arc-memory=" ^ label,
          { (p ~seed 1000 100_000) with Params.avoid_repeats = avoid },
          Strategy.Neighbor_injection ))
      [ ("off", false); ("on", true) ]
  in
  section ?trials "EXT: Neighbor Injection failed-arc memory (paper IV-C refinement)"
    rows

let strength_aware ?trials ?(seed = 42) () =
  let hetero nodes tasks =
    {
      (p ~seed nodes tasks) with
      Params.heterogeneity = Params.Heterogeneous;
      work = Params.Strength_per_tick;
    }
  in
  let rows =
    [
      ( "random          homogeneous 1000n/1e5t",
        p ~seed 1000 100_000,
        Strategy.Random_injection );
      ( "strength-aware  homogeneous 1000n/1e5t",
        p ~seed 1000 100_000,
        Strategy.Strength_aware_injection );
      ( "random          hetero+strength 1000n/1e5t",
        hetero 1000 100_000,
        Strategy.Random_injection );
      ( "strength-aware  hetero+strength 1000n/1e5t",
        hetero 1000 100_000,
        Strategy.Strength_aware_injection );
    ]
  in
  section ?trials
    "EXT: strength-aware injection (paper VII future work: weak nodes should      not steal from strong ones)"
    rows

let clustered_keys ?trials ?(seed = 42) () =
  let clustered =
    {
      (p ~seed 1000 100_000) with
      Params.keys = Params.Clustered { hotspots = 20; spread = 0.02; zipf_s = 1.1 };
    }
  in
  let rows =
    [
      ("none    uniform-sha1 keys", p ~seed 1000 100_000, Strategy.No_strategy);
      ("none    clustered/zipf keys", clustered, Strategy.No_strategy);
      ("random  uniform-sha1 keys", p ~seed 1000 100_000, Strategy.Random_injection);
      ("random  clustered/zipf keys", clustered, Strategy.Random_injection);
    ]
  in
  section ?trials
    "EXT: clustered (Zipfian) task keys (paper III: real workloads cluster)" rows

let stagger ?trials ?(seed = 42) () =
  let rows =
    List.map
      (fun (label, flag) ->
        ( "random 1000n/1e5t decisions=" ^ label,
          { (p ~seed 1000 100_000) with Params.stagger_decisions = flag },
          Strategy.Random_injection ))
      [ ("staggered", true); ("synchronized", false) ]
  in
  section ?trials "EXT: staggered vs synchronized decision phases" rows

let failure_churn ?trials:_ ?(seed = 42) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Harness.header
       "EXT: graceful churn vs ungraceful failure at rate 0.01 (paper IV-A: \
        dying is of minimal impact)");
  List.iter
    (fun (label, churn, fail) ->
      let params =
        {
          (p ~seed 1000 100_000) with
          Params.churn_rate = churn;
          failure_rate = fail;
        }
      in
      let r = Engine.run params Engine.no_strategy in
      Buffer.add_string buf
        (Format.asprintf "  %-32s factor=%6.3f  key_transfers=%d@\n" label
           r.Engine.factor r.Engine.messages.Messages.key_transfers))
    [
      ("no churn (baseline)", 0.0, 0.0);
      ("graceful churn 0.01", 0.01, 0.0);
      ("ungraceful failures 0.01", 0.0, 0.01);
    ];
  Buffer.contents buf

let static_vnodes ?trials ?(seed = 42) () =
  let base = p ~seed 1000 100_000 in
  let rows =
    [
      ("none (baseline)", base, Strategy.No_strategy);
      ("static virtual servers (5/node)", base, Strategy.Static_virtual_nodes);
      ("random injection (adaptive)", base, Strategy.Random_injection);
    ]
  in
  section ?trials
    "EXT: static virtual servers vs adaptive injection (1000n/1e5t)" rows

let rejoin_identity ?trials ?(seed = 42) () =
  let rows =
    List.map
      (fun (label, fresh) ->
        ( "churn-0.01 1000n/1e5t rejoin-id=" ^ label,
          {
            (p ~seed 1000 100_000) with
            Params.churn_rate = 0.01;
            rejoin_fresh_id = fresh;
          },
          Strategy.Induced_churn ))
      [ ("fresh", true); ("original", false) ]
  in
  section ?trials "EXT: churned nodes rejoin at fresh vs original id" rows
