let f = Printf.sprintf "%.6f"

let table1_csv rows =
  Csv_out.table
    ~header:[ "nodes"; "tasks"; "median_workload"; "sigma" ]
    (List.map
       (fun (r : Initial_distribution.table1_row) ->
         [
           string_of_int r.Initial_distribution.nodes;
           string_of_int r.Initial_distribution.tasks;
           f r.Initial_distribution.median_workload;
           f r.Initial_distribution.sigma;
         ])
       rows)

let churn_sweep_csv cells =
  Csv_out.table
    ~header:
      [
        "churn_rate";
        "nodes";
        "tasks";
        "mean_factor";
        "stddev_factor";
        "trials";
        "aborted";
        "mean_factor_finished";
      ]
    (List.map
       (fun (c : Churn_sweep.cell) ->
         let a = c.Churn_sweep.aggregate in
         [
           f c.Churn_sweep.churn_rate;
           string_of_int c.Churn_sweep.nodes;
           string_of_int c.Churn_sweep.tasks;
           f a.Runner.mean_factor;
           f a.Runner.stddev_factor;
           string_of_int a.Runner.trials;
           string_of_int a.Runner.aborted;
           (* empty cell rather than "nan" when every trial aborted *)
           (if a.Runner.finished = 0 then ""
            else f a.Runner.mean_factor_finished);
         ])
       cells)

let degradation_csv cells =
  Csv_out.table
    ~header:
      [
        "drop_rate";
        "strategy";
        "mean_factor";
        "stddev_factor";
        "trials";
        "aborted";
        "mean_factor_finished";
      ]
    (List.map
       (fun (c : Degradation.cell) ->
         let a = c.Degradation.aggregate in
         [
           f c.Degradation.drop;
           Strategy.name c.Degradation.strategy;
           f a.Runner.mean_factor;
           f a.Runner.stddev_factor;
           string_of_int a.Runner.trials;
           string_of_int a.Runner.aborted;
           (if a.Runner.finished = 0 then ""
            else f a.Runner.mean_factor_finished);
         ])
       cells)

let lookup_hops_csv rows =
  Csv_out.table
    ~header:[ "nodes"; "lookups"; "mean_hops"; "p99_hops"; "expected" ]
    (List.map
       (fun (r : Lookup_hops.row) ->
         [
           string_of_int r.Lookup_hops.nodes;
           string_of_int r.Lookup_hops.lookups;
           f r.Lookup_hops.mean_hops;
           f r.Lookup_hops.p99_hops;
           f r.Lookup_hops.expected;
         ])
       rows)

let maintenance_csv rows =
  Csv_out.table
    ~header:
      [
        "churn_rate";
        "rounds";
        "messages_per_node_round";
        "finger_messages_per_node_round";
        "mean_stale_heads";
        "final_consistent";
        "final_finger_accuracy";
      ]
    (List.map
       (fun (r : Maintenance.row) ->
         [
           f r.Maintenance.churn_rate;
           string_of_int r.Maintenance.rounds;
           f r.Maintenance.messages_per_node_round;
           f r.Maintenance.finger_messages_per_node_round;
           f r.Maintenance.mean_stale_heads;
           string_of_bool r.Maintenance.final_consistent;
           f r.Maintenance.final_finger_accuracy;
         ])
       rows)

let failure_recovery_csv rows =
  Csv_out.table
    ~header:[ "fail_fraction"; "replicas"; "measured_loss_rate"; "expected_loss_rate" ]
    (List.map
       (fun (r : Failure_recovery.row) ->
         [
           f r.Failure_recovery.fail_fraction;
           string_of_int r.Failure_recovery.replicas;
           f r.Failure_recovery.measured_loss_rate;
           f r.Failure_recovery.expected_loss_rate;
         ])
       rows)

let recovery_sweep_csv cells =
  Csv_out.table
    ~header:
      [
        "replicas";
        "burst_count";
        "burst_fraction";
        "measured_loss_rate";
        "expected_loss_rate";
        "mean_factor";
        "mean_tasks_lost";
        "trials";
      ]
    (List.map
       (fun (c : Recovery_sweep.cell) ->
         let a = c.Recovery_sweep.aggregate in
         [
           string_of_int c.Recovery_sweep.replicas;
           string_of_int c.Recovery_sweep.burst_count;
           f c.Recovery_sweep.burst_fraction;
           f c.Recovery_sweep.measured_loss_rate;
           f c.Recovery_sweep.expected_loss_rate;
           f a.Runner.mean_factor;
           f a.Runner.mean_tasks_lost;
           string_of_int a.Runner.trials;
         ])
       cells)

(* NaN percentiles (no completions in the window) become empty cells,
   matching the finished-only convention above. *)
let fnan v = if Float.is_nan v then "" else f v

let steady_csv windows =
  Csv_out.table
    ~header:
      [
        "window";
        "start_tick";
        "ticks";
        "arrivals";
        "completions";
        "arrival_rate";
        "completion_rate";
        "queue_p50";
        "queue_p95";
        "queue_p99";
        "sojourn_p50";
        "sojourn_p95";
        "sojourn_p99";
        "sojourn_mean";
        "sybil_min";
        "sybil_max";
        "sybil_mean";
      ]
    (Array.to_list
       (Array.map
          (fun (w : Steady.window) ->
            [
              string_of_int w.Steady.index;
              string_of_int w.Steady.start_tick;
              string_of_int w.Steady.ticks;
              string_of_int w.Steady.arrivals;
              string_of_int w.Steady.completions;
              f w.Steady.arrival_rate;
              f w.Steady.completion_rate;
              f w.Steady.queue_p50;
              f w.Steady.queue_p95;
              f w.Steady.queue_p99;
              fnan w.Steady.sojourn_p50;
              fnan w.Steady.sojourn_p95;
              fnan w.Steady.sojourn_p99;
              fnan w.Steady.sojourn_mean;
              string_of_int w.Steady.sybil_min;
              string_of_int w.Steady.sybil_max;
              f w.Steady.sybil_mean;
            ])
          windows))

let steady_sweep_csv cells =
  Csv_out.table
    ~header:
      [
        "strategy";
        "rate";
        "churn";
        "trials";
        "mean_arrived";
        "mean_tasks_lost";
        "queue_p50";
        "queue_p95";
        "queue_p99";
        "sojourn_p50";
        "sojourn_p95";
        "sojourn_p99";
      ]
    (List.map
       (fun (c : Steady_sweep.cell) ->
         let a = c.Steady_sweep.aggregate in
         [
           Strategy.name c.Steady_sweep.strategy;
           f c.Steady_sweep.rate;
           f c.Steady_sweep.churn;
           string_of_int a.Runner.trials;
           f a.Runner.mean_arrived;
           f a.Runner.mean_tasks_lost;
           fnan a.Runner.steady_queue_p50;
           fnan a.Runner.steady_queue_p95;
           fnan a.Runner.steady_queue_p99;
           fnan a.Runner.steady_sojourn_p50;
           fnan a.Runner.steady_sojourn_p95;
           fnan a.Runner.steady_sojourn_p99;
         ])
       cells)

let attack_sweep_csv cells =
  Csv_out.table
    ~header:
      [
        "strength";
        "puzzle_cost";
        "mean_attack_joins";
        "mean_puzzles";
        "mean_tasks_lost";
        "mean_factor";
        "stddev_factor";
        "trials";
        "aborted";
        "mean_factor_finished";
      ]
    (List.map
       (fun (c : Attack_sweep.cell) ->
         let a = c.Attack_sweep.aggregate in
         [
           string_of_int c.Attack_sweep.strength;
           string_of_int c.Attack_sweep.puzzle_cost;
           f c.Attack_sweep.mean_attack_joins;
           f c.Attack_sweep.mean_puzzles;
           f c.Attack_sweep.mean_tasks_lost;
           f a.Runner.mean_factor;
           f a.Runner.stddev_factor;
           string_of_int a.Runner.trials;
           string_of_int a.Runner.aborted;
           (if a.Runner.finished = 0 then ""
            else f a.Runner.mean_factor_finished);
         ])
       cells)

let head_to_head_csv cells =
  Csv_out.table
    ~header:
      [
        "strategy";
        "churn";
        "drop";
        "mean_work_transfers";
        "mean_key_transfers";
        "mean_factor";
        "stddev_factor";
        "trials";
        "aborted";
        "mean_factor_finished";
      ]
    (List.map
       (fun (c : Headtohead.cell) ->
         let a = c.Headtohead.aggregate in
         [
           Strategy.name c.Headtohead.strategy;
           f c.Headtohead.churn;
           f c.Headtohead.drop;
           f c.Headtohead.mean_work_transfers;
           f c.Headtohead.mean_key_transfers;
           f a.Runner.mean_factor;
           f a.Runner.stddev_factor;
           string_of_int a.Runner.trials;
           string_of_int a.Runner.aborted;
           (if a.Runner.finished = 0 then ""
            else f a.Runner.mean_factor_finished);
         ])
       cells)

let work_timeline_csv series =
  let header =
    "tick"
    :: List.map
         (fun (s : Work_timeline.series) -> Strategy.name s.Work_timeline.strategy)
         series
  in
  let window =
    List.fold_left
      (fun acc (s : Work_timeline.series) ->
        max acc (Array.length s.Work_timeline.work_per_tick))
      0 series
  in
  let rows =
    List.init window (fun tick ->
        string_of_int tick
        :: List.map
             (fun (s : Work_timeline.series) ->
               if tick < Array.length s.Work_timeline.work_per_tick then
                 string_of_int s.Work_timeline.work_per_tick.(tick)
               else "")
             series)
  in
  Csv_out.table ~header rows

let trace_csv trace =
  Csv_out.table
    ~header:[ "tick"; "work_done"; "remaining"; "active_nodes"; "vnodes" ]
    (Array.to_list
       (Array.map
          (fun (p : Trace.point) ->
            [
              string_of_int p.Trace.tick;
              string_of_int p.Trace.work_done;
              string_of_int p.Trace.remaining;
              string_of_int p.Trace.active_nodes;
              string_of_int p.Trace.vnodes;
            ])
          (Trace.points trace)))

let messages_json (m : Messages.t) =
  Json_out.Obj
    [
      ("joins", Json_out.Int m.Messages.joins);
      ("leaves", Json_out.Int m.Messages.leaves);
      ("key_transfers", Json_out.Int m.Messages.key_transfers);
      ("workload_queries", Json_out.Int m.Messages.workload_queries);
      ("invitations", Json_out.Int m.Messages.invitations);
      ("lookup_hops", Json_out.Int m.Messages.lookup_hops);
      ("maintenance", Json_out.Int m.Messages.maintenance);
      ("replications", Json_out.Int m.Messages.replications);
      ("dropped", Json_out.Int m.Messages.dropped);
      ("retries", Json_out.Int m.Messages.retries);
      ("tasks_lost", Json_out.Int m.Messages.tasks_lost);
      ("attack_joins", Json_out.Int m.Messages.attack_joins);
      ("puzzles", Json_out.Int m.Messages.puzzles);
      ("work_transfers", Json_out.Int m.Messages.work_transfers);
      ("total", Json_out.Int (Messages.total m));
    ]

let metrics_json (m : Metrics.report) =
  Json_out.Obj
    [
      ("enabled", Json_out.Bool m.Metrics.enabled);
      ("ticks", Json_out.Int m.Metrics.ticks);
      ("wall_s", Json_out.Float m.Metrics.wall_s);
      ("arrive_s", Json_out.Float m.Metrics.arrive_s);
      ("decide_s", Json_out.Float m.Metrics.decide_s);
      ("consume_s", Json_out.Float m.Metrics.consume_s);
      ("churn_s", Json_out.Float m.Metrics.churn_s);
      ("check_s", Json_out.Float m.Metrics.check_s);
      ("trace_s", Json_out.Float m.Metrics.trace_s);
      ("minor_words", Json_out.Float m.Metrics.minor_words);
      ("major_words", Json_out.Float m.Metrics.major_words);
      ("promoted_words", Json_out.Float m.Metrics.promoted_words);
      ("minor_collections", Json_out.Int m.Metrics.minor_collections);
      ("major_collections", Json_out.Int m.Metrics.major_collections);
    ]

let result_json (r : Engine.result) =
  let outcome, ticks =
    match r.Engine.outcome with
    | Engine.Finished t -> ("finished", t)
    | Engine.Aborted t -> ("aborted", t)
    | Engine.Timed_out t -> ("timed_out", t)
  in
  Json_out.Obj
    ([
       ("outcome", Json_out.String outcome);
       ("ticks", Json_out.Int ticks);
       ("ideal", Json_out.Int r.Engine.ideal);
       ("factor", Json_out.Float r.Engine.factor);
       ("work_per_tick", Json_out.Float r.Engine.work_per_tick);
       ("final_vnodes", Json_out.Int r.Engine.final_vnodes);
       ("final_active", Json_out.Int r.Engine.final_active);
       ("messages", messages_json r.Engine.messages);
     ]
    (* keep the historical shape for batch runs *)
    @ (if Array.length r.Engine.steady > 0 then
         [
           ("arrived_total", Json_out.Int r.Engine.arrived_total);
           ( "sojourn_ledger",
             Json_out.List
               (List.map
                  (fun (s, c) ->
                    Json_out.List [ Json_out.Int s; Json_out.Int c ])
                  r.Engine.sojourn_ledger) );
         ]
       else [])
    (* keep the historical shape when metrics were off *)
    @
    if r.Engine.metrics.Metrics.enabled then
      [ ("metrics", metrics_json r.Engine.metrics) ]
    else [])

let aggregate_json ~label (a : Runner.aggregate) =
  Json_out.Obj
    [
      ("label", Json_out.String label);
      ("trials", Json_out.Int a.Runner.trials);
      ("mean_factor", Json_out.Float a.Runner.mean_factor);
      ("stddev_factor", Json_out.Float a.Runner.stddev_factor);
      ("min_factor", Json_out.Float a.Runner.min_factor);
      ("max_factor", Json_out.Float a.Runner.max_factor);
      ("mean_ticks", Json_out.Float a.Runner.mean_ticks);
      ("mean_ideal", Json_out.Float a.Runner.mean_ideal);
      ("aborted", Json_out.Int a.Runner.aborted);
      ("finished", Json_out.Int a.Runner.finished);
      ("timed_out", Json_out.Int a.Runner.timed_out);
      ("mean_factor_finished", Json_out.Float a.Runner.mean_factor_finished);
      ("mean_ticks_finished", Json_out.Float a.Runner.mean_ticks_finished);
      ("mean_messages", Json_out.Float a.Runner.mean_messages);
      ("mean_tasks_lost", Json_out.Float a.Runner.mean_tasks_lost);
      ("open_system", Json_out.Bool a.Runner.open_system);
      (* NaN renders as null: the factor family above for open systems,
         the steady family below for batch runs. *)
      ("mean_arrived", Json_out.Float a.Runner.mean_arrived);
      ("steady_queue_p50", Json_out.Float a.Runner.steady_queue_p50);
      ("steady_queue_p95", Json_out.Float a.Runner.steady_queue_p95);
      ("steady_queue_p99", Json_out.Float a.Runner.steady_queue_p99);
      ("steady_sojourn_p50", Json_out.Float a.Runner.steady_sojourn_p50);
      ("steady_sojourn_p95", Json_out.Float a.Runner.steady_sojourn_p95);
      ("steady_sojourn_p99", Json_out.Float a.Runner.steady_sojourn_p99);
    ]

let head_to_head_json cells makespans =
  Json_out.Obj
    [
      ( "grid",
        Json_out.List
          (List.map
             (fun (c : Headtohead.cell) ->
               Json_out.Obj
                 [
                   ( "strategy",
                     Json_out.String (Strategy.name c.Headtohead.strategy) );
                   ("churn", Json_out.Float c.Headtohead.churn);
                   ("drop", Json_out.Float c.Headtohead.drop);
                   ( "mean_work_transfers",
                     Json_out.Float c.Headtohead.mean_work_transfers );
                   ( "mean_key_transfers",
                     Json_out.Float c.Headtohead.mean_key_transfers );
                   ( "aggregate",
                     aggregate_json
                       ~label:
                         (Printf.sprintf "%s churn=%g drop=%g"
                            (Strategy.name c.Headtohead.strategy)
                            c.Headtohead.churn c.Headtohead.drop)
                       c.Headtohead.aggregate );
                 ])
             cells) );
      ( "makespans",
        Json_out.List
          (List.map
             (fun (m : Headtohead.makespan) ->
               Json_out.Obj
                 [
                   ( "strategy",
                     Json_out.String (Strategy.name m.Headtohead.ms_strategy) );
                   ("warm_vnodes", Json_out.Int m.Headtohead.warm_vnodes);
                   ("map_makespan", Json_out.Int m.Headtohead.map_makespan);
                   ( "reduce_makespan",
                     Json_out.Int m.Headtohead.reduce_makespan );
                   ("total_makespan", Json_out.Int m.Headtohead.total_makespan);
                 ])
             makespans) );
    ]

let attack_sweep_json cells =
  Json_out.List
    (List.map
       (fun (c : Attack_sweep.cell) ->
         Json_out.Obj
           [
             ("strength", Json_out.Int c.Attack_sweep.strength);
             ("puzzle_cost", Json_out.Int c.Attack_sweep.puzzle_cost);
             ( "mean_attack_joins",
               Json_out.Float c.Attack_sweep.mean_attack_joins );
             ("mean_puzzles", Json_out.Float c.Attack_sweep.mean_puzzles);
             ("mean_tasks_lost", Json_out.Float c.Attack_sweep.mean_tasks_lost);
             ( "aggregate",
               aggregate_json
                 ~label:
                   (Printf.sprintf "strength=%d puzzle_cost=%d"
                      c.Attack_sweep.strength c.Attack_sweep.puzzle_cost)
                 c.Attack_sweep.aggregate );
           ])
       cells)
