(** Live recovery under crash bursts: loss versus replication degree.

    Unlike {!Failure_recovery} — which samples the standalone
    {!Replication} model — this sweep runs the {e full simulation} with
    live replication on ([Params.replicas > 0]) and a crash burst from
    the fault plan, and reads the engine's own [tasks_lost] ledger.  The
    measured in-sim loss rate should track the analytic [f^(r+1)] (up to
    without-replacement sampling at small rings and the few tasks
    consumed before the burst), tying the survivability model to the
    tick-driven data plane it now protects. *)

type cell = {
  replicas : int;
  burst_count : int;  (** machines killed by the single burst *)
  burst_fraction : float;  (** [burst_count / nodes] *)
  measured_loss_rate : float;  (** mean [tasks_lost] / tasks *)
  expected_loss_rate : float;  (** analytic [f^(r+1)] *)
  aggregate : Runner.aggregate;
}

val replica_counts : int list
(** Live degrees only (default [1; 2; 3]): [0] would switch recovery off
    and trivially measure zero loss under the assumed-reliable plane. *)

val burst_counts : int list

val run :
  ?trials:int -> ?seed:int -> ?nodes:int -> ?tasks:int ->
  ?replica_counts:int list -> ?burst_counts:int list ->
  ?journal:Journal.t -> ?trial_timeout:float -> unit -> cell list
(** [journal] makes the sweep resumable (completed cells skipped —
    {!Journal}); [trial_timeout] arms the per-trial watchdog
    ({!Runner.run_trials}). *)

val print_table : cell list -> string
