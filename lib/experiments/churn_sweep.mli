(** Table II: runtime factor of the Induced Churn strategy across churn
    rates and network shapes. *)

type cell = {
  churn_rate : float;
  nodes : int;
  tasks : int;
  aggregate : Runner.aggregate;
}

val rates : float list
(** The paper's rates: 0, 0.0001, 0.001, 0.01. *)

val configs : (int * int) list
(** The paper's five (nodes, tasks) columns. *)

val run :
  ?trials:int -> ?seed:int -> ?rates:float list -> ?configs:(int * int) list ->
  ?journal:Journal.t -> ?trial_timeout:float ->
  unit -> cell list
(** [journal] makes the sweep resumable: completed cells recorded there
    (matching coordinates, seed and trial count) are skipped, newly
    computed ones appended ({!Journal}).  [trial_timeout] arms the
    per-trial watchdog ({!Runner.run_trials}). *)

val print_table : cell list -> string
(** Rows = churn rates, columns = network configurations — Table II's
    layout. *)
