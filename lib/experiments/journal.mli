(** Per-cell result journal: crash-safe resumable sweeps.

    One JSONL line per completed sweep cell,
    [{"key": <canonical key>, "cell": <payload>}], appended, flushed and
    {e fsynced} before the cell's result is used — a killed sweep rerun
    against the same journal path recomputes only the cells that never
    landed.  Keys embed the experiment name, the cell coordinates, the
    strided per-cell seed and the trial count ({!Runner.stride_seed}
    makes cells independent, which is what makes skipping sound), so a
    sweep rerun with a different [--seed] or [--trials] shares no keys
    with the old lines and recomputes everything.

    A torn trailing line (the only damage fsync-per-line can leave) and
    unparseable payloads are skipped on reload and recomputed, never
    fatal. *)

type t

val open_ : string -> t
(** Open (creating if missing) a journal at a path: existing lines are
    parsed into the completed-cell index, then the file is reopened for
    appending.  Duplicate keys resolve to the last line, matching append
    order. *)

val path : t -> string

val loaded : t -> int
(** Number of cell lines recovered from the pre-existing file (0 for a
    fresh journal) — lets drivers report "resuming, N cells done". *)

val find : t -> key:string -> Json_out.t option

val record : t -> key:string -> Json_out.t -> unit
(** Append one completed cell and fsync before returning. *)

val close : t -> unit

val key : (string * Json_out.t) list -> string
(** Canonical key string for a cell: the compact JSON rendering of the
    given object fields (field order is part of the key — keep it
    fixed per experiment). *)

val cell :
  t option ->
  key:string ->
  encode:('a -> Json_out.t) ->
  decode:(Json_out.t -> 'a option) ->
  (unit -> 'a) ->
  'a
(** [cell journal ~key ~encode ~decode compute] is the uniform
    skip-or-compute step: with no journal, just [compute ()]; with one,
    return the decoded cached cell if [key] is present and decodes, else
    compute, {!record}, and return.  A cached payload that fails to
    decode is recomputed and overwritten, not trusted. *)

val aggregate_to_json : Runner.aggregate -> Json_out.t

val aggregate_of_json : Json_out.t -> Runner.aggregate option
(** Full-fidelity {!Runner.aggregate} codec (every field; floats exact
    via Json_out's round-trip rendering, NaN as null) so journal-resumed
    sweeps print and export byte-identically to uninterrupted ones. *)
