(** Eclipse-attack damage versus the admission-puzzle defense.

    Sweeps attacker {!Attack.t.strength} against [Params.puzzle_cost]
    on the full batch simulation with live replication: each cell's
    windowed attack eclipses one arc, holds its keys hostage, and
    crashes every attacker when the window closes.  Two damage readings
    per cell — the runtime factor (how badly the eclipse starves honest
    load balancing) and the recovery plane's [tasks_lost] (hostage tasks
    whose replica group died in the exit crash) — plus the
    [attack_joins] / [puzzles] ledgers showing the defense throttling
    the injection rate.  [strength = 0] rows are the attack-off
    baseline; defended ones still price the tax benign Sybils pay. *)

type cell = {
  strength : int;
  puzzle_cost : int;
  mean_attack_joins : float;  (** mean Sybils the attacker landed per trial *)
  mean_puzzles : float;  (** mean admission puzzles issued per trial *)
  mean_tasks_lost : float;  (** mean recovery-plane loss per trial *)
  aggregate : Runner.aggregate;
}

val strengths : int list
(** Default [0; 2; 4; 8]; [0] is the attack-off baseline. *)

val puzzle_costs : int list
(** Default [0; 4]: undefended versus a 4-tick admission puzzle. *)

val run :
  ?trials:int ->
  ?seed:int ->
  ?nodes:int ->
  ?tasks:int ->
  ?replicas:int ->
  ?window:int * int ->
  ?strengths:int list ->
  ?puzzle_costs:int list ->
  ?strategy:Strategy.t ->
  ?journal:Journal.t ->
  ?trial_timeout:float ->
  unit ->
  cell list
(** Cells in [strengths] × [puzzle_costs] order, per-cell seeds strided
    by {!Runner.stride_seed} so no two cells share a trial seed.
    [journal] makes the sweep resumable (completed cells skipped, new
    ones appended — {!Journal}); [trial_timeout] arms the per-trial
    watchdog ({!Runner.run_trials}). *)

val print_table : cell list -> string
