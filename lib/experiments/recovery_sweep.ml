type cell = {
  replicas : int;
  burst_count : int;
  burst_fraction : float;
  measured_loss_rate : float;
  expected_loss_rate : float;
  aggregate : Runner.aggregate;
}

(* replicas = 0 is deliberately absent: it turns recovery off entirely
   (the paper's assumed-reliable data plane), so its measured loss is 0
   by construction and comparing it to the analytic f would mislead. *)
let replica_counts = [ 1; 2; 3 ]
let burst_counts = [ 4; 10; 20 ]

let run ?(trials = 5) ?(seed = 42) ?(nodes = 40) ?(tasks = 4_000)
    ?(replica_counts = replica_counts) ?(burst_counts = burst_counts) () =
  let grid =
    List.concat_map
      (fun replicas -> List.map (fun b -> (replicas, b)) burst_counts)
      replica_counts
  in
  (* Disjoint per-cell seed ranges; see Runner.stride_seed. *)
  List.mapi
    (fun index (replicas, burst_count) ->
      (* Churn off and the burst early: the ring the burst hits is
         the initial one, with every replica group fully enrolled at
         setup and barely any tasks consumed yet — the closest the
         live simulation gets to the analytic f^(r+1) model. *)
      let faults =
        {
          Faults.none with
          Faults.crash_bursts = [ { Faults.at = 1; count = burst_count } ];
        }
      in
      let params =
        { (Params.default ~nodes ~tasks) with
          Params.replicas;
          seed = Runner.stride_seed ~base:seed ~trials ~index;
          faults;
        }
      in
      let aggregate =
        Runner.run_trials ~trials params (Strategy.make Strategy.No_strategy)
      in
      let burst_fraction = float_of_int burst_count /. float_of_int nodes in
      {
        replicas;
        burst_count;
        burst_fraction;
        measured_loss_rate =
          aggregate.Runner.mean_tasks_lost /. float_of_int tasks;
        expected_loss_rate =
          Replication.expected_loss_rate ~fail_fraction:burst_fraction
            ~replicas;
        aggregate;
      })
    grid

let print_table cells =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %6s %7s %14s %14s %12s\n" "replicas" "burst" "frac"
       "measured loss" "expected f^r+1" "mean factor");
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%-8d %6d %7.3f %14.6f %14.6f %12.3f\n" c.replicas
           c.burst_count c.burst_fraction c.measured_loss_rate
           c.expected_loss_rate c.aggregate.Runner.mean_factor))
    cells;
  Buffer.contents buf
