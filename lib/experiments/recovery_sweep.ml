type cell = {
  replicas : int;
  burst_count : int;
  burst_fraction : float;
  measured_loss_rate : float;
  expected_loss_rate : float;
  aggregate : Runner.aggregate;
}

(* replicas = 0 is deliberately absent: it turns recovery off entirely
   (the paper's assumed-reliable data plane), so its measured loss is 0
   by construction and comparing it to the analytic f would mislead. *)
let replica_counts = [ 1; 2; 3 ]
let burst_counts = [ 4; 10; 20 ]

(* Journal payload: the derived loss rates plus the aggregate; the
   coordinates live in the key and are re-attached on decode. *)
let cell_to_json c =
  Json_out.Obj
    [
      ("measured_loss_rate", Json_out.Float c.measured_loss_rate);
      ("expected_loss_rate", Json_out.Float c.expected_loss_rate);
      ("aggregate", Journal.aggregate_to_json c.aggregate);
    ]

let cell_of_json ~replicas ~burst_count ~burst_fraction v =
  let ( let* ) = Option.bind in
  let flt name = Option.bind (Json_in.member name v) Json_in.to_float in
  let* measured_loss_rate = flt "measured_loss_rate" in
  let* expected_loss_rate = flt "expected_loss_rate" in
  let* aggregate =
    Option.bind (Json_in.member "aggregate" v) Journal.aggregate_of_json
  in
  Some
    {
      replicas;
      burst_count;
      burst_fraction;
      measured_loss_rate;
      expected_loss_rate;
      aggregate;
    }

let run ?(trials = 5) ?(seed = 42) ?(nodes = 40) ?(tasks = 4_000)
    ?(replica_counts = replica_counts) ?(burst_counts = burst_counts)
    ?journal ?trial_timeout () =
  let grid =
    List.concat_map
      (fun replicas -> List.map (fun b -> (replicas, b)) burst_counts)
      replica_counts
  in
  (* Disjoint per-cell seed ranges; see Runner.stride_seed. *)
  List.mapi
    (fun index (replicas, burst_count) ->
      (* Churn off and the burst early: the ring the burst hits is
         the initial one, with every replica group fully enrolled at
         setup and barely any tasks consumed yet — the closest the
         live simulation gets to the analytic f^(r+1) model. *)
      let faults =
        {
          Faults.none with
          Faults.crash_bursts = [ { Faults.at = 1; count = burst_count } ];
        }
      in
      let cell_seed = Runner.stride_seed ~base:seed ~trials ~index in
      let params =
        { (Params.default ~nodes ~tasks) with
          Params.replicas;
          seed = cell_seed;
          faults;
        }
      in
      let burst_fraction = float_of_int burst_count /. float_of_int nodes in
      let key =
        Journal.key
          [
            ("experiment", Json_out.String "recovery_sweep");
            ("replicas", Json_out.Int replicas);
            ("burst_count", Json_out.Int burst_count);
            ("nodes", Json_out.Int nodes);
            ("tasks", Json_out.Int tasks);
            ("seed", Json_out.Int cell_seed);
            ("trials", Json_out.Int trials);
          ]
      in
      Journal.cell journal ~key ~encode:cell_to_json
        ~decode:(cell_of_json ~replicas ~burst_count ~burst_fraction)
        (fun () ->
          let aggregate =
            Runner.run_trials ~trials ?trial_timeout params
              (Strategy.make Strategy.No_strategy)
          in
          {
            replicas;
            burst_count;
            burst_fraction;
            measured_loss_rate =
              aggregate.Runner.mean_tasks_lost /. float_of_int tasks;
            expected_loss_rate =
              Replication.expected_loss_rate ~fail_fraction:burst_fraction
                ~replicas;
            aggregate;
          }))
    grid

let print_table cells =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %6s %7s %14s %14s %12s\n" "replicas" "burst" "frac"
       "measured loss" "expected f^r+1" "mean factor");
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%-8d %6d %7.3f %14.6f %14.6f %12.3f\n" c.replicas
           c.burst_count c.burst_fraction c.measured_loss_rate
           c.expected_loss_rate c.aggregate.Runner.mean_factor))
    cells;
  Buffer.contents buf
