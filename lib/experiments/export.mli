(** Machine-readable exports of experiment results (CSV / JSON). *)

val table1_csv : Initial_distribution.table1_row list -> string
val churn_sweep_csv : Churn_sweep.cell list -> string
val degradation_csv : Degradation.cell list -> string
val lookup_hops_csv : Lookup_hops.row list -> string
val maintenance_csv : Maintenance.row list -> string
val failure_recovery_csv : Failure_recovery.row list -> string
val recovery_sweep_csv : Recovery_sweep.cell list -> string

val attack_sweep_csv : Attack_sweep.cell list -> string
(** The adversarial sweep grid, one row per strength × puzzle_cost
    cell: landed Sybils, puzzles issued, recovery-plane loss, and the
    makespan-factor family. *)

val head_to_head_csv : Headtohead.cell list -> string
(** The strategy-family grid, one row per strategy × churn × drop cell:
    the two transfer currencies plus the makespan-factor family. *)

val steady_csv : Steady.window array -> string
(** One open-system run's measurement windows: arrival/completion rates,
    queue and sojourn percentiles, Sybil-count extremes per window.  NaN
    sojourn cells (no completions in the window) export as empty. *)

val steady_sweep_csv : Steady_sweep.cell list -> string
(** The steady-state sweep grid, one row per
    strategy × rate × churn cell. *)

val work_timeline_csv : Work_timeline.series list -> string

val trace_csv : Trace.t -> string
(** Per-tick series of one run: tick, work done, remaining, active
    machines, vnodes. *)

val metrics_json : Metrics.report -> Json_out.t
(** Per-phase timings and GC deltas of one run. *)

val result_json : Engine.result -> Json_out.t
(** One simulation result as a JSON object (outcome, factor, messages,
    work-per-tick mean; traces are exported separately as CSV).  Gains a
    ["metrics"] object when the run had metrics enabled; the shape is
    unchanged otherwise. *)

val aggregate_json : label:string -> Runner.aggregate -> Json_out.t

val attack_sweep_json : Attack_sweep.cell list -> Json_out.t
(** The adversarial sweep as a JSON list, one object per cell with the
    full aggregate embedded. *)

val head_to_head_json :
  Headtohead.cell list -> Headtohead.makespan list -> Json_out.t
(** The head-to-head comparison as one object: the ["grid"] cells (full
    aggregates embedded) and the ChordReduce ["makespans"] leg. *)
