type cell = {
  churn_rate : float;
  nodes : int;
  tasks : int;
  aggregate : Runner.aggregate;
}

let rates = [ 0.0; 0.0001; 0.001; 0.01 ]

let configs =
  [
    (1000, 100_000);
    (1000, 1_000_000);
    (100, 10_000);
    (100, 100_000);
    (100, 1_000_000);
  ]

let run ?(trials = 3) ?(seed = 42) ?(rates = rates) ?(configs = configs) () =
  let grid =
    List.concat_map
      (fun churn_rate ->
        List.map (fun config -> (churn_rate, config)) configs)
      rates
  in
  (* Each cell gets a disjoint seed range (trial [i] runs on
     [cell seed + i]); see Runner.stride_seed. *)
  List.mapi
    (fun index (churn_rate, (nodes, tasks)) ->
      let params =
        { (Params.default ~nodes ~tasks) with
          Params.churn_rate;
          seed = Runner.stride_seed ~base:seed ~trials ~index;
        }
      in
      let aggregate =
        Runner.run_trials ~trials params (Strategy.make Strategy.Induced_churn)
      in
      { churn_rate; nodes; tasks; aggregate })
    grid

let print_table cells =
  let buf = Buffer.create 1024 in
  let configs =
    List.sort_uniq compare (List.map (fun c -> (c.nodes, c.tasks)) cells)
  in
  let rates = List.sort_uniq compare (List.map (fun c -> c.churn_rate) cells) in
  Buffer.add_string buf (Printf.sprintf "%-8s" "Churn");
  List.iter
    (fun (n, t) -> Buffer.add_string buf (Printf.sprintf " | %5dn/%.0e" n (float_of_int t)))
    configs;
  Buffer.add_char buf '\n';
  List.iter
    (fun rate ->
      Buffer.add_string buf (Printf.sprintf "%-8g" rate);
      List.iter
        (fun (n, t) ->
          match
            List.find_opt
              (fun c -> c.churn_rate = rate && c.nodes = n && c.tasks = t)
              cells
          with
          | Some c ->
            Buffer.add_string buf
              (Printf.sprintf " | %11.3f" c.aggregate.Runner.mean_factor)
          | None -> Buffer.add_string buf (Printf.sprintf " | %11s" "-"))
        configs;
      Buffer.add_char buf '\n')
    rates;
  Buffer.contents buf
