type cell = {
  churn_rate : float;
  nodes : int;
  tasks : int;
  aggregate : Runner.aggregate;
}

let rates = [ 0.0; 0.0001; 0.001; 0.01 ]

let configs =
  [
    (1000, 100_000);
    (1000, 1_000_000);
    (100, 10_000);
    (100, 100_000);
    (100, 1_000_000);
  ]

let run ?(trials = 3) ?(seed = 42) ?(rates = rates) ?(configs = configs)
    ?journal ?trial_timeout () =
  let grid =
    List.concat_map
      (fun churn_rate ->
        List.map (fun config -> (churn_rate, config)) configs)
      rates
  in
  (* Each cell gets a disjoint seed range (trial [i] runs on
     [cell seed + i]); see Runner.stride_seed. *)
  List.mapi
    (fun index (churn_rate, (nodes, tasks)) ->
      let cell_seed = Runner.stride_seed ~base:seed ~trials ~index in
      let params =
        { (Params.default ~nodes ~tasks) with
          Params.churn_rate;
          seed = cell_seed;
        }
      in
      let key =
        Journal.key
          [
            ("experiment", Json_out.String "churn_sweep");
            ("churn_rate", Json_out.Float churn_rate);
            ("nodes", Json_out.Int nodes);
            ("tasks", Json_out.Int tasks);
            ("seed", Json_out.Int cell_seed);
            ("trials", Json_out.Int trials);
          ]
      in
      let aggregate =
        Journal.cell journal ~key ~encode:Journal.aggregate_to_json
          ~decode:Journal.aggregate_of_json (fun () ->
            Runner.run_trials ~trials ?trial_timeout params
              (Strategy.make Strategy.Induced_churn))
      in
      { churn_rate; nodes; tasks; aggregate })
    grid

let print_table cells =
  let buf = Buffer.create 1024 in
  let configs =
    List.sort_uniq compare (List.map (fun c -> (c.nodes, c.tasks)) cells)
  in
  let rates = List.sort_uniq compare (List.map (fun c -> c.churn_rate) cells) in
  Buffer.add_string buf (Printf.sprintf "%-8s" "Churn");
  List.iter
    (fun (n, t) -> Buffer.add_string buf (Printf.sprintf " | %5dn/%.0e" n (float_of_int t)))
    configs;
  Buffer.add_char buf '\n';
  List.iter
    (fun rate ->
      Buffer.add_string buf (Printf.sprintf "%-8g" rate);
      List.iter
        (fun (n, t) ->
          match
            List.find_opt
              (fun c -> c.churn_rate = rate && c.nodes = n && c.tasks = t)
              cells
          with
          | Some c ->
            Buffer.add_string buf
              (Printf.sprintf " | %11.3f" c.aggregate.Runner.mean_factor)
          | None -> Buffer.add_string buf (Printf.sprintf " | %11s" "-"))
        configs;
      Buffer.add_char buf '\n')
    rates;
  Buffer.contents buf
