type cell = {
  strategy : Strategy.t;
  rate : float;
  churn : float;
  aggregate : Runner.aggregate;
}

(* The default grid keeps one strategy per interesting family: the
   do-nothing baseline, blind injection, the query-driven variant with
   retries, and the paper's cooperative protocol. *)
let strategies =
  [
    Strategy.No_strategy;
    Strategy.Random_injection;
    Strategy.Smart_neighbor_injection;
    Strategy.Invitation;
  ]

(* Light / moderate / saturating load for the default 40-machine ring:
   at 1 task/machine/tick of service, 20 arrivals/tick leaves no slack
   once churn removes a few machines. *)
let rates = [ 2.0; 8.0; 20.0 ]
let churn_rates = [ 0.0; 0.05 ]

let run ?(trials = 3) ?(seed = 42) ?(nodes = 40) ?(tasks = 500)
    ?(horizon = 120) ?(window = 20) ?(strategies = strategies)
    ?(rates = rates) ?(churn_rates = churn_rates) ?journal ?trial_timeout () =
  let grid =
    List.concat_map
      (fun strategy ->
        List.concat_map
          (fun rate -> List.map (fun churn -> (strategy, rate, churn)) churn_rates)
          rates)
      strategies
  in
  (* Disjoint per-cell seed ranges; see Runner.stride_seed. *)
  List.mapi
    (fun index (strategy, rate, churn) ->
      let arrivals =
        {
          Arrivals.none with
          Arrivals.profile = Some (Arrivals.Poisson { rate });
          horizon;
          window;
        }
      in
      let cell_seed = Runner.stride_seed ~base:seed ~trials ~index in
      let params =
        Strategy.default_params strategy
          {
            (Params.default ~nodes ~tasks) with
            Params.seed = cell_seed;
            churn_rate = churn;
            arrivals;
          }
      in
      let key =
        Journal.key
          [
            ("experiment", Json_out.String "steady_sweep");
            ("strategy", Json_out.String (Strategy.name strategy));
            ("rate", Json_out.Float rate);
            ("churn", Json_out.Float churn);
            ("nodes", Json_out.Int nodes);
            ("tasks", Json_out.Int tasks);
            ("horizon", Json_out.Int horizon);
            ("window", Json_out.Int window);
            ("seed", Json_out.Int cell_seed);
            ("trials", Json_out.Int trials);
          ]
      in
      let aggregate =
        Journal.cell journal ~key ~encode:Journal.aggregate_to_json
          ~decode:Journal.aggregate_of_json (fun () ->
            Runner.run_trials ~trials ?trial_timeout params
              (Strategy.make strategy))
      in
      { strategy; rate; churn; aggregate })
    grid

let print_table cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %6s %6s %9s %21s %21s\n" "strategy" "rate" "churn"
       "arrived" "queue p50/p95/p99" "sojourn p50/p95/p99");
  let pcts a b c =
    let one v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v in
    Printf.sprintf "%s/%s/%s" (one a) (one b) (one c)
  in
  List.iter
    (fun c ->
      let a = c.aggregate in
      Buffer.add_string buf
        (Printf.sprintf "%-16s %6.1f %6.2f %9.1f %21s %21s\n"
           (Strategy.name c.strategy) c.rate c.churn a.Runner.mean_arrived
           (pcts a.Runner.steady_queue_p50 a.Runner.steady_queue_p95
              a.Runner.steady_queue_p99)
           (pcts a.Runner.steady_sojourn_p50 a.Runner.steady_sojourn_p95
              a.Runner.steady_sojourn_p99)))
    cells;
  Buffer.contents buf
