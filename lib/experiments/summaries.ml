let p = Harness.p

let random_injection ?trials ?(seed = 42) () =
  let buf = Buffer.create 2048 in
  let emit label params strategy =
    Buffer.add_string buf (Harness.row ~label (Harness.aggregate ?trials params strategy))
  in
  Buffer.add_string buf
    (Harness.header "S-RI: Random Injection runtime factors (paper VI-B)");
  emit "RI 1000n/1e5t (paper: 1.36..1.70)" (p ~seed 1000 100_000)
    Strategy.Random_injection;
  emit "RI 1000n/1e6t (paper: 1.12..1.25)" (p ~seed 1000 1_000_000)
    Strategy.Random_injection;
  Buffer.add_string buf "  -- same tasks-per-node ratio (1000/node), sizes compared:\n";
  emit "RI  100n/1e5t (smaller net, ~0.086 faster)" (p ~seed 100 100_000)
    Strategy.Random_injection;
  emit "RI 1000n/1e6t (larger net)" (p ~seed 1000 1_000_000)
    Strategy.Random_injection;
  Buffer.add_string buf "  -- heterogeneous networks (strength-per-tick work):\n";
  let hetero nodes tasks =
    {
      (p ~seed nodes tasks) with
      Params.heterogeneity = Params.Heterogeneous;
      work = Params.Strength_per_tick;
    }
  in
  emit "RI hetero 1000n/1e6t (1000/node; paper worst 1.955)"
    (hetero 1000 1_000_000) Strategy.Random_injection;
  emit "RI hetero 1000n/1e5t (100/node; paper worst 4.052)"
    (hetero 1000 100_000) Strategy.Random_injection;
  Buffer.contents buf

let neighbor_injection ?trials ?(seed = 42) () =
  let buf = Buffer.create 2048 in
  let emit label params strategy =
    Buffer.add_string buf (Harness.row ~label (Harness.aggregate ?trials params strategy))
  in
  Buffer.add_string buf
    (Harness.header "S-NI: Neighbor Injection runtime factors (paper VI-C)");
  emit "none     1000n/1e5t (paper: 7.476)" (p ~seed 1000 100_000)
    Strategy.No_strategy;
  emit "neighbor 1000n/1e5t (paper: 5.033)" (p ~seed 1000 100_000)
    Strategy.Neighbor_injection;
  emit "none      100n/1e4t (paper: 5.043)" (p ~seed 100 10_000)
    Strategy.No_strategy;
  emit "neighbor  100n/1e4t (paper: 3.006)" (p ~seed 100 10_000)
    Strategy.Neighbor_injection;
  Buffer.add_string buf "  -- smart variant (paper: ~1.2 better on average):\n";
  emit "smart    1000n/1e5t" (p ~seed 1000 100_000)
    Strategy.Smart_neighbor_injection;
  emit "smart     100n/1e4t" (p ~seed 100 10_000)
    Strategy.Smart_neighbor_injection;
  Buffer.add_string buf
    "  -- heterogeneous strength-per-tick (paper: worse than homogeneous):\n";
  let hetero =
    {
      (p ~seed 1000 100_000) with
      Params.heterogeneity = Params.Heterogeneous;
      work = Params.Strength_per_tick;
    }
  in
  emit "neighbor hetero 1000n/1e5t" hetero Strategy.Neighbor_injection;
  emit "smart    hetero 1000n/1e5t" hetero Strategy.Smart_neighbor_injection;
  Buffer.contents buf

let invitation ?trials ?(seed = 42) () =
  let buf = Buffer.create 2048 in
  let emit label params strategy =
    Buffer.add_string buf (Harness.row ~label (Harness.aggregate ?trials params strategy))
  in
  Buffer.add_string buf
    (Harness.header "S-INV: Invitation runtime factors (paper VI-D)");
  emit "invitation  100n/1e5t (paper: 3.749)" (p ~seed 100 100_000)
    Strategy.Invitation;
  emit "invitation 1000n/1e5t (paper: 5.673)" (p ~seed 1000 100_000)
    Strategy.Invitation;
  let hetero =
    {
      (p ~seed 1000 100_000) with
      Params.heterogeneity = Params.Heterogeneous;
      work = Params.Strength_per_tick;
    }
  in
  emit "invitation hetero strength-work 1000n/1e5t (paper: 6.097)" hetero
    Strategy.Invitation;
  Buffer.contents buf
