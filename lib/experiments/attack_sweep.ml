(* Adversarial sweep: what an eclipse-and-abandon attacker costs the
   network, and what the admission-puzzle defense buys back.  Each cell
   runs the full batch simulation with a windowed attack plan at a given
   strength, with and without [Params.puzzle_cost]: the attackers hoard
   the keys routed into the eclipsed arc while their window is open,
   then crash together when it closes, so the damage shows up twice —
   in the runtime factor (load-balance quality, honest machines starve
   while hostage tasks sit on attacker Sybils) and in the recovery
   plane's [tasks_lost] ledger (hostage tasks whose whole replica group
   died with the attackers).  The defense throttles injection to one
   admission slot per machine per [puzzle_cost] ticks, shrinking both.

   strength = 0 is the attack-off baseline ({!Attack.none}, bit-for-bit
   the pre-attack engine); the defended baseline row still prices the
   puzzle tax benign Sybils pay. *)

type cell = {
  strength : int;
  puzzle_cost : int;
  mean_attack_joins : float;
  mean_puzzles : float;
  mean_tasks_lost : float;
  aggregate : Runner.aggregate;
}

let strengths = [ 0; 2; 4; 8 ]
let puzzle_costs = [ 0; 4 ]

let plan ~strength ~window =
  if strength = 0 then Attack.none
  else
    {
      Attack.strength;
      machines = 4;
      target = 0.25;
      width = 0.15;
      window = Some window;
    }

(* Journal payload: the per-cell derived means plus the aggregate; the
   coordinates live in the key and are re-attached on decode. *)
let cell_to_json c =
  Json_out.Obj
    [
      ("mean_attack_joins", Json_out.Float c.mean_attack_joins);
      ("mean_puzzles", Json_out.Float c.mean_puzzles);
      ("mean_tasks_lost", Json_out.Float c.mean_tasks_lost);
      ("aggregate", Journal.aggregate_to_json c.aggregate);
    ]

let cell_of_json ~strength ~puzzle_cost v =
  let ( let* ) = Option.bind in
  let flt name = Option.bind (Json_in.member name v) Json_in.to_float in
  let* mean_attack_joins = flt "mean_attack_joins" in
  let* mean_puzzles = flt "mean_puzzles" in
  let* mean_tasks_lost = flt "mean_tasks_lost" in
  let* aggregate =
    Option.bind (Json_in.member "aggregate" v) Journal.aggregate_of_json
  in
  Some
    {
      strength;
      puzzle_cost;
      mean_attack_joins;
      mean_puzzles;
      mean_tasks_lost;
      aggregate;
    }

let run ?(trials = 3) ?(seed = 42) ?(nodes = 48) ?(tasks = 4_000)
    ?(replicas = 2) ?(window = (2, 18)) ?(strengths = strengths)
    ?(puzzle_costs = puzzle_costs) ?(strategy = Strategy.Random_injection)
    ?journal ?trial_timeout () =
  let grid =
    List.concat_map
      (fun strength -> List.map (fun cost -> (strength, cost)) puzzle_costs)
      strengths
  in
  (* Disjoint per-cell seed ranges; see Runner.stride_seed. *)
  List.mapi
    (fun index (strength, puzzle_cost) ->
      let cell_seed = Runner.stride_seed ~base:seed ~trials ~index in
      let params =
        Strategy.default_params strategy
          {
            (Params.default ~nodes ~tasks) with
            Params.seed = cell_seed;
            replicas;
            churn_rate = 0.01;
            attack = plan ~strength ~window;
            puzzle_cost;
          }
      in
      let key =
        Journal.key
          [
            ("experiment", Json_out.String "attack_sweep");
            ("strategy", Json_out.String (Strategy.name strategy));
            ("strength", Json_out.Int strength);
            ("puzzle_cost", Json_out.Int puzzle_cost);
            ("nodes", Json_out.Int nodes);
            ("tasks", Json_out.Int tasks);
            ("replicas", Json_out.Int replicas);
            ("seed", Json_out.Int cell_seed);
            ("trials", Json_out.Int trials);
          ]
      in
      Journal.cell journal ~key ~encode:cell_to_json
        ~decode:(cell_of_json ~strength ~puzzle_cost) (fun () ->
          let results =
            Runner.run_all ~trials ?trial_timeout params (Strategy.make strategy)
          in
          let mean_msg field =
            Descriptive.mean
              (Array.map
                 (fun (r : Engine.result) ->
                   float_of_int (field r.Engine.messages))
                 results)
          in
          {
            strength;
            puzzle_cost;
            mean_attack_joins = mean_msg (fun m -> m.Messages.attack_joins);
            mean_puzzles = mean_msg (fun m -> m.Messages.puzzles);
            mean_tasks_lost = mean_msg (fun m -> m.Messages.tasks_lost);
            aggregate = Runner.aggregate_of params results;
          }))
    grid

let print_table cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %6s %12s %8s %10s %12s %8s\n" "strength" "puzzle"
       "attack_joins" "puzzles" "tasks_lost" "mean factor" "aborted");
  List.iter
    (fun c ->
      let a = c.aggregate in
      Buffer.add_string buf
        (Printf.sprintf "%-8d %6d %12.1f %8.1f %10.1f %12.3f %8d\n" c.strength
           c.puzzle_cost c.mean_attack_joins c.mean_puzzles c.mean_tasks_lost
           a.Runner.mean_factor a.Runner.aborted))
    cells;
  Buffer.contents buf
