(* Adversarial sweep: what an eclipse-and-abandon attacker costs the
   network, and what the admission-puzzle defense buys back.  Each cell
   runs the full batch simulation with a windowed attack plan at a given
   strength, with and without [Params.puzzle_cost]: the attackers hoard
   the keys routed into the eclipsed arc while their window is open,
   then crash together when it closes, so the damage shows up twice —
   in the runtime factor (load-balance quality, honest machines starve
   while hostage tasks sit on attacker Sybils) and in the recovery
   plane's [tasks_lost] ledger (hostage tasks whose whole replica group
   died with the attackers).  The defense throttles injection to one
   admission slot per machine per [puzzle_cost] ticks, shrinking both.

   strength = 0 is the attack-off baseline ({!Attack.none}, bit-for-bit
   the pre-attack engine); the defended baseline row still prices the
   puzzle tax benign Sybils pay. *)

type cell = {
  strength : int;
  puzzle_cost : int;
  mean_attack_joins : float;
  mean_puzzles : float;
  mean_tasks_lost : float;
  aggregate : Runner.aggregate;
}

let strengths = [ 0; 2; 4; 8 ]
let puzzle_costs = [ 0; 4 ]

let plan ~strength ~window =
  if strength = 0 then Attack.none
  else
    {
      Attack.strength;
      machines = 4;
      target = 0.25;
      width = 0.15;
      window = Some window;
    }

let run ?(trials = 3) ?(seed = 42) ?(nodes = 48) ?(tasks = 4_000)
    ?(replicas = 2) ?(window = (2, 18)) ?(strengths = strengths)
    ?(puzzle_costs = puzzle_costs) ?(strategy = Strategy.Random_injection) () =
  let grid =
    List.concat_map
      (fun strength -> List.map (fun cost -> (strength, cost)) puzzle_costs)
      strengths
  in
  (* Disjoint per-cell seed ranges; see Runner.stride_seed. *)
  List.mapi
    (fun index (strength, puzzle_cost) ->
      let params =
        Strategy.default_params strategy
          {
            (Params.default ~nodes ~tasks) with
            Params.seed = Runner.stride_seed ~base:seed ~trials ~index;
            replicas;
            churn_rate = 0.01;
            attack = plan ~strength ~window;
            puzzle_cost;
          }
      in
      let results = Runner.run_all ~trials params (Strategy.make strategy) in
      let mean_msg field =
        Descriptive.mean
          (Array.map
             (fun (r : Engine.result) -> float_of_int (field r.Engine.messages))
             results)
      in
      {
        strength;
        puzzle_cost;
        mean_attack_joins = mean_msg (fun m -> m.Messages.attack_joins);
        mean_puzzles = mean_msg (fun m -> m.Messages.puzzles);
        mean_tasks_lost = mean_msg (fun m -> m.Messages.tasks_lost);
        aggregate = Runner.aggregate_of params results;
      })
    grid

let print_table cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %6s %12s %8s %10s %12s %8s\n" "strength" "puzzle"
       "attack_joins" "puzzles" "tasks_lost" "mean factor" "aborted");
  List.iter
    (fun c ->
      let a = c.aggregate in
      Buffer.add_string buf
        (Printf.sprintf "%-8d %6d %12.1f %8.1f %10.1f %12.3f %8d\n" c.strength
           c.puzzle_cost c.mean_attack_joins c.mean_puzzles c.mean_tasks_lost
           a.Runner.mean_factor a.Runner.aborted))
    cells;
  Buffer.contents buf
