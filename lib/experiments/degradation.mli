(** Graceful-degradation sweep: runtime factor vs control-plane message
    loss ({!Faults.t} drop rate), per strategy.

    Message-free strategies are expected to stay flat across the row;
    query-driven ones (Smart Neighbor, Invitation, Strength-aware) show
    how far the retry/fallback machinery keeps them from the dumb
    baseline as replies vanish.  Every cell terminates and conserves
    keys regardless of drop rate — the fault model only degrades
    decisions, never the data plane. *)

type cell = {
  drop : float;
  strategy : Strategy.t;
  aggregate : Runner.aggregate;
}

val rates : float list
(** Default drop rates: 0, 0.05, 0.1, 0.2, 0.5. *)

val plan : float -> Faults.t
(** The fault plan a cell runs under: the given drop rate, every other
    fault axis off, default retry knobs. *)

val run :
  ?trials:int ->
  ?seed:int ->
  ?rates:float list ->
  ?nodes:int ->
  ?tasks:int ->
  ?journal:Journal.t ->
  ?trial_timeout:float ->
  unit ->
  cell list
(** Defaults: 3 trials, seed 42, 100 nodes, 10k tasks, moderate churn
    (0.01) and failures (0.005) so recovery traffic is also exposed to
    the drop rate's indirect effects.  [journal] makes the sweep
    resumable (completed cells skipped — {!Journal}); [trial_timeout]
    arms the per-trial watchdog ({!Runner.run_trials}). *)

val print_table : cell list -> string
(** Rows = strategies, columns = drop rates, cells = mean factor. *)
